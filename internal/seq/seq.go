// Package seq models sequential circuits as a combinational core plus a
// scan chain of flip-flops, and implements the test-application styles the
// paper's Section 5 DFT discussion contrasts: two-pattern OBD tests need
// two specific vectors on consecutive clocks, which standard scan cannot
// deliver freely. Enhanced scan applies arbitrary pairs; launch-on-shift
// derives the second vector by shifting the chain; launch-on-capture
// (broadside) derives it through the circuit's own next-state function —
// each tighter constraint shrinks the reachable pair space and with it the
// OBD coverage.
//
// The primary entry points are netlist-first: FromCircuit lifts any
// DFF-bearing logic.Circuit into the scan model (chain order = netlist
// order), Insert stitches a scan model back into a flat netlist, and
// Unroll time-frame-expands the model into one combinational circuit the
// combinational ATPG/SAT stack runs unchanged. Test generation is unified
// behind the Style enum (Enhanced, LOS, LOC) and shared Options:
// GenerateTests / GenerateLOCTests for batches, Generate for one fault,
// StyleCoverage for exhaustive pair-space grading. The older
// constructor-centric spellings (New, Mode, PairSpace, GenerateTest,
// ModeCoverage) remain as deprecated aliases delegating to the new API.
package seq

import (
	"fmt"

	"gobd/internal/atpg"
	"gobd/internal/fault"
	"gobd/internal/logic"
)

// FF is one scan flip-flop: its output Q feeds a core input (present
// state) and its input D is driven by a core net (next state).
type FF struct {
	Q string // core input net carrying the present state
	D string // core net captured as the next state
}

// Circuit is a sequential circuit: a combinational core whose inputs are
// the primary inputs plus the FF outputs, and whose nets drive the primary
// outputs and the FF inputs. FFs are listed in scan-chain order (index 0
// is the scan-in end).
type Circuit struct {
	Core *logic.Circuit
	FFs  []FF
	PIs  []string // core inputs that are true primary inputs
	POs  []string // observable core outputs
}

// ChainError is a typed scan-chain construction failure from FromCircuit,
// Insert or New: the flip-flop list does not fit the combinational core.
type ChainError struct{ Msg string }

func (e *ChainError) Error() string { return "seq: " + e.Msg }

// build validates and assembles the scan model shared by FromCircuit,
// Insert and the deprecated New.
func build(core *logic.Circuit, ffs []FF) (*Circuit, error) {
	if err := core.Validate(); err != nil {
		return nil, err
	}
	isQ := make(map[string]bool, len(ffs))
	for _, ff := range ffs {
		if !core.IsInput(ff.Q) {
			return nil, &ChainError{Msg: fmt.Sprintf("FF output %q is not a core input", ff.Q)}
		}
		if isQ[ff.Q] {
			return nil, &ChainError{Msg: fmt.Sprintf("core input %q fed by two flip-flops", ff.Q)}
		}
		isQ[ff.Q] = true
		if core.Driver(ff.D) == nil && !core.IsInput(ff.D) {
			return nil, &ChainError{Msg: fmt.Sprintf("FF input net %q is undriven", ff.D)}
		}
	}
	s := &Circuit{Core: core, FFs: ffs}
	for _, in := range core.Inputs {
		if !isQ[in] {
			s.PIs = append(s.PIs, in)
		}
	}
	s.POs = append(s.POs, core.Outputs...)
	return s, nil
}

// New validates and builds the sequential wrapper from an explicit core
// and flip-flop list.
//
// Deprecated: use FromCircuit on a DFF-bearing netlist, or Insert followed
// by FromCircuit to go through the flat form; New remains for callers that
// already hold a hand-built core.
func New(core *logic.Circuit, ffs []FF) (*Circuit, error) { return build(core, ffs) }

// State is a present-state assignment in scan-chain order.
type State []logic.Value

// AssignError is a typed pattern-assembly failure from CoreAssign: the
// state or primary-input assignment does not cover the core's inputs.
type AssignError struct{ Msg string }

func (e *AssignError) Error() string { return "seq: " + e.Msg }

// CoreAssign merges a state and a primary-input assignment into a complete
// core input pattern.
func (s *Circuit) CoreAssign(st State, pi atpg.Pattern) (atpg.Pattern, error) {
	if len(st) != len(s.FFs) {
		return nil, &AssignError{Msg: fmt.Sprintf("state width %d, want %d", len(st), len(s.FFs))}
	}
	p := make(atpg.Pattern, len(s.Core.Inputs))
	for i, ff := range s.FFs {
		p[ff.Q] = st[i]
	}
	for _, in := range s.PIs {
		v, ok := pi[in]
		if !ok {
			return nil, &AssignError{Msg: fmt.Sprintf("primary input %q unassigned", in)}
		}
		p[in] = v
	}
	return p, nil
}

// NextState evaluates the core under (state, pi) and returns the values
// captured by the flip-flops.
func (s *Circuit) NextState(st State, pi atpg.Pattern) (State, error) {
	assign, err := s.CoreAssign(st, pi)
	if err != nil {
		return nil, err
	}
	vals := s.Core.Eval(assign, nil)
	next := make(State, len(s.FFs))
	for i, ff := range s.FFs {
		next[i] = vals[ff.D]
	}
	return next, nil
}

// Style is a two-pattern test-application style — the one enum every
// generator in this package dispatches on.
type Style int

// Test-application styles, ordered by shrinking pair space: every LOS or
// LOC pair is also an enhanced-scan pair.
const (
	Enhanced Style = iota // arbitrary vector pairs (hold-scan cells)
	LOS                   // launch-on-shift: second state = 1-bit chain shift of the first
	LOC                   // launch-on-capture (broadside): second state = the circuit's own next state
)

// Mode is the old name of Style.
//
// Deprecated: use Style.
type Mode = Style

// Deprecated aliases of the Style constants.
const (
	EnhancedScan    = Enhanced // Deprecated: use Enhanced.
	LaunchOnShift   = LOS      // Deprecated: use LOS.
	LaunchOnCapture = LOC      // Deprecated: use LOC.
)

// String implements fmt.Stringer.
func (m Style) String() string {
	switch m {
	case Enhanced:
		return "enhanced-scan"
	case LOS:
		return "launch-on-shift"
	case LOC:
		return "launch-on-capture"
	default:
		return fmt.Sprintf("Style(%d)", int(m))
	}
}

// ParseStyle resolves a style name: the CLI spellings "enhanced", "los",
// "loc" or the long String forms.
func ParseStyle(name string) (Style, error) {
	switch name {
	case "enhanced", "enhanced-scan":
		return Enhanced, nil
	case "los", "launch-on-shift":
		return LOS, nil
	case "loc", "launch-on-capture":
		return LOC, nil
	default:
		return 0, &StyleError{Name: name}
	}
}

// StyleError is a typed failure naming a Style outside the declared enum
// (Style set, Name empty) or an unparseable style name (Name set).
type StyleError struct {
	Style Style
	Name  string
}

func (e *StyleError) Error() string {
	if e.Name != "" {
		return fmt.Sprintf("seq: unknown style %q (want enhanced, los or loc)", e.Name)
	}
	return fmt.Sprintf("seq: unknown style %v", e.Style)
}

// ModeError is the old name of StyleError.
//
// Deprecated: use StyleError.
type ModeError = StyleError

// enumLimit caps the number of nets a full 0/1 enumeration may span.
const enumLimit = 20

// EnumLimitError reports an enumeration request over more nets than the
// package's hard cap allows; the pair space would be at least 2^Nets.
type EnumLimitError struct {
	Nets  int // nets requested
	Limit int // the enumLimit cap
}

func (e *EnumLimitError) Error() string {
	return fmt.Sprintf("seq: enumeration over %d nets exceeds the %d-net limit", e.Nets, e.Limit)
}

// enumPatterns yields all complete 0/1 assignments of the named nets.
func enumPatterns(nets []string) ([]atpg.Pattern, error) {
	n := len(nets)
	if n > enumLimit {
		return nil, &EnumLimitError{Nets: n, Limit: enumLimit}
	}
	out := make([]atpg.Pattern, 0, 1<<uint(n))
	for m := 0; m < 1<<uint(n); m++ {
		p := make(atpg.Pattern, n)
		for i, net := range nets {
			p[net] = logic.FromBool(m&(1<<uint(i)) != 0)
		}
		out = append(out, p)
	}
	return out, nil
}

// maxPairSpaceBits bounds the enumerated pair spaces.
const maxPairSpaceBits = 18

// SpaceLimitError is a typed EnumeratePairs failure: the style's pair
// space needs more bits than maxPairSpaceBits allows to enumerate.
type SpaceLimitError struct {
	Mode  Style
	Bits  int // bits the space would span
	Limit int // the maxPairSpaceBits cap
}

func (e *SpaceLimitError) Error() string {
	return fmt.Sprintf("seq: %s pair space needs %d bits (limit %d)", e.Mode, e.Bits, e.Limit)
}

// styleBits returns the free-bit count of one style's pair space: the
// number of independent 0/1 choices that determine a deliverable pair.
func styleBits(s *Circuit, style Style) (int, error) {
	nCore, nPI := len(s.Core.Inputs), len(s.PIs)
	switch style {
	case Enhanced:
		return 2 * nCore, nil
	case LOS:
		return nCore + 1 + nPI, nil
	case LOC:
		return nCore + nPI, nil
	default:
		return 0, &StyleError{Style: style}
	}
}

// EnumeratePairs enumerates every vector pair the application style can
// deliver to the combinational core. The total search space must stay
// within maxPairSpaceBits bits.
func EnumeratePairs(s *Circuit, style Style) ([]atpg.TwoPattern, error) {
	bits, err := styleBits(s, style)
	if err != nil {
		return nil, err
	}
	if bits > maxPairSpaceBits {
		return nil, &SpaceLimitError{Mode: style, Bits: bits, Limit: maxPairSpaceBits}
	}
	v1s, err := enumPatterns(s.Core.Inputs)
	if err != nil {
		return nil, err
	}
	pi2s, err := enumPatterns(s.PIs)
	if err != nil {
		return nil, err
	}
	stateOf := func(p atpg.Pattern) State {
		st := make(State, len(s.FFs))
		for i, ff := range s.FFs {
			st[i] = p[ff.Q]
		}
		return st
	}
	var out []atpg.TwoPattern
	switch style {
	case Enhanced:
		for _, v1 := range v1s {
			for _, v2 := range v1s {
				out = append(out, atpg.TwoPattern{V1: v1, V2: v2})
			}
		}
	case LOS:
		for _, v1 := range v1s {
			st1 := stateOf(v1)
			for _, scanIn := range []logic.Value{logic.Zero, logic.One} {
				st2 := shiftState(st1, scanIn)
				for _, pi2 := range pi2s {
					v2, err := s.CoreAssign(st2, pi2)
					if err != nil {
						return nil, err
					}
					out = append(out, atpg.TwoPattern{V1: v1, V2: v2})
				}
			}
		}
	case LOC:
		for _, v1 := range v1s {
			st1 := stateOf(v1)
			pi1 := make(atpg.Pattern, len(s.PIs))
			for _, in := range s.PIs {
				pi1[in] = v1[in]
			}
			st2, err := s.NextState(st1, pi1)
			if err != nil {
				return nil, err
			}
			complete := true
			for _, v := range st2 {
				if !v.IsKnown() {
					complete = false
				}
			}
			if !complete {
				continue
			}
			for _, pi2 := range pi2s {
				v2, err := s.CoreAssign(st2, pi2)
				if err != nil {
					return nil, err
				}
				out = append(out, atpg.TwoPattern{V1: v1, V2: v2})
			}
		}
	default:
		return nil, &StyleError{Style: style}
	}
	return out, nil
}

// shiftState returns the 1-bit launch-on-shift successor of a state:
// scanIn enters at index 0 (the scan-in end) and every bit moves one
// position down the chain.
func shiftState(st State, scanIn logic.Value) State {
	next := make(State, len(st))
	prev := scanIn
	for i := range st {
		next[i] = prev
		prev = st[i]
	}
	return next
}

// PairSpace enumerates every deliverable vector pair of one style.
//
// Deprecated: use EnumeratePairs.
func (s *Circuit) PairSpace(mode Mode) ([]atpg.TwoPattern, error) {
	return EnumeratePairs(s, mode)
}

// GenerateTest searches the style's pair space for a test of the core OBD
// fault.
//
// Deprecated: use Generate, which also distinguishes search failures from
// untestable verdicts through its error return.
func (s *Circuit) GenerateTest(f fault.OBD, mode Mode) (*atpg.TwoPattern, atpg.Status) {
	tp, st, err := Generate(s, f, mode, nil)
	if err != nil {
		return nil, atpg.Aborted
	}
	return tp, st
}

// ModeCoverage grades every OBD fault of the core against the full pair
// space of one application style.
//
// Deprecated: use StyleCoverage.
func (s *Circuit) ModeCoverage(mode Mode) (atpg.Coverage, error) {
	return StyleCoverage(s, mode)
}

// StyleCoverage grades every OBD fault of the core against the full pair
// space of one application style (exhaustive, via the bit-parallel fault
// simulator).
func StyleCoverage(s *Circuit, style Style) (atpg.Coverage, error) {
	space, err := EnumeratePairs(s, style)
	if err != nil {
		return atpg.Coverage{}, err
	}
	faults, _ := fault.OBDUniverse(s.Core)
	pg := atpg.NewPairGrader(s.Core, space)
	cov := atpg.Coverage{Total: len(faults)}
	for _, f := range faults {
		//obdcheck:allow paniccontract — EnumeratePairs bounds the space to maxPairSpaceBits, so PackPatterns' input-count precondition holds
		if pg.Detects(f) {
			cov.Detected++
		} else {
			cov.Undetected = append(cov.Undetected, f.String())
		}
	}
	return cov, nil
}
