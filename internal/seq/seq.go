// Package seq models sequential circuits as a combinational core plus a
// scan chain of flip-flops, and implements the test-application styles the
// paper's Section 5 DFT discussion contrasts: two-pattern OBD tests need
// two specific vectors on consecutive clocks, which standard scan cannot
// deliver freely. Enhanced scan applies arbitrary pairs; launch-on-shift
// derives the second vector by shifting the chain; launch-on-capture
// (broadside) derives it through the circuit's own next-state function —
// each tighter constraint shrinks the reachable pair space and with it the
// OBD coverage.
package seq

import (
	"fmt"

	"gobd/internal/atpg"
	"gobd/internal/fault"
	"gobd/internal/logic"
)

// FF is one scan flip-flop: its output Q feeds a core input (present
// state) and its input D is driven by a core net (next state).
type FF struct {
	Q string // core input net carrying the present state
	D string // core net captured as the next state
}

// Circuit is a sequential circuit: a combinational core whose inputs are
// the primary inputs plus the FF outputs, and whose nets drive the primary
// outputs and the FF inputs. FFs are listed in scan-chain order (index 0
// is the scan-in end).
type Circuit struct {
	Core *logic.Circuit
	FFs  []FF
	PIs  []string // core inputs that are true primary inputs
	POs  []string // observable core outputs
}

// ChainError is a typed scan-chain construction failure from New: the
// flip-flop list does not fit the combinational core.
type ChainError struct{ Msg string }

func (e *ChainError) Error() string { return "seq: " + e.Msg }

// New validates and builds the sequential wrapper: every FF.Q must be a
// core input, every FF.D a driven core net; the primary inputs are the
// remaining core inputs and the primary outputs the declared core outputs.
func New(core *logic.Circuit, ffs []FF) (*Circuit, error) {
	if err := core.Validate(); err != nil {
		return nil, err
	}
	isQ := make(map[string]bool, len(ffs))
	for _, ff := range ffs {
		if !core.IsInput(ff.Q) {
			return nil, &ChainError{Msg: fmt.Sprintf("FF output %q is not a core input", ff.Q)}
		}
		if isQ[ff.Q] {
			return nil, &ChainError{Msg: fmt.Sprintf("core input %q fed by two flip-flops", ff.Q)}
		}
		isQ[ff.Q] = true
		if core.Driver(ff.D) == nil && !core.IsInput(ff.D) {
			return nil, &ChainError{Msg: fmt.Sprintf("FF input net %q is undriven", ff.D)}
		}
	}
	s := &Circuit{Core: core, FFs: ffs}
	for _, in := range core.Inputs {
		if !isQ[in] {
			s.PIs = append(s.PIs, in)
		}
	}
	s.POs = append(s.POs, core.Outputs...)
	return s, nil
}

// State is a present-state assignment in scan-chain order.
type State []logic.Value

// AssignError is a typed pattern-assembly failure from CoreAssign: the
// state or primary-input assignment does not cover the core's inputs.
type AssignError struct{ Msg string }

func (e *AssignError) Error() string { return "seq: " + e.Msg }

// CoreAssign merges a state and a primary-input assignment into a complete
// core input pattern.
func (s *Circuit) CoreAssign(st State, pi atpg.Pattern) (atpg.Pattern, error) {
	if len(st) != len(s.FFs) {
		return nil, &AssignError{Msg: fmt.Sprintf("state width %d, want %d", len(st), len(s.FFs))}
	}
	p := make(atpg.Pattern, len(s.Core.Inputs))
	for i, ff := range s.FFs {
		p[ff.Q] = st[i]
	}
	for _, in := range s.PIs {
		v, ok := pi[in]
		if !ok {
			return nil, &AssignError{Msg: fmt.Sprintf("primary input %q unassigned", in)}
		}
		p[in] = v
	}
	return p, nil
}

// NextState evaluates the core under (state, pi) and returns the values
// captured by the flip-flops.
func (s *Circuit) NextState(st State, pi atpg.Pattern) (State, error) {
	assign, err := s.CoreAssign(st, pi)
	if err != nil {
		return nil, err
	}
	vals := s.Core.Eval(assign, nil)
	next := make(State, len(s.FFs))
	for i, ff := range s.FFs {
		next[i] = vals[ff.D]
	}
	return next, nil
}

// Mode is a two-pattern test-application style.
type Mode int

// Test-application styles.
const (
	EnhancedScan    Mode = iota // arbitrary vector pairs (hold-scan cells)
	LaunchOnShift               // second state = 1-bit chain shift of the first
	LaunchOnCapture             // second state = the circuit's own next state
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case EnhancedScan:
		return "enhanced-scan"
	case LaunchOnShift:
		return "launch-on-shift"
	case LaunchOnCapture:
		return "launch-on-capture"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// enumLimit caps the number of nets a full 0/1 enumeration may span.
const enumLimit = 20

// EnumLimitError reports an enumeration request over more nets than the
// package's hard cap allows; the pair space would be at least 2^Nets.
type EnumLimitError struct {
	Nets  int // nets requested
	Limit int // the enumLimit cap
}

func (e *EnumLimitError) Error() string {
	return fmt.Sprintf("seq: enumeration over %d nets exceeds the %d-net limit", e.Nets, e.Limit)
}

// enumPatterns yields all complete 0/1 assignments of the named nets.
func enumPatterns(nets []string) ([]atpg.Pattern, error) {
	n := len(nets)
	if n > enumLimit {
		return nil, &EnumLimitError{Nets: n, Limit: enumLimit}
	}
	out := make([]atpg.Pattern, 0, 1<<uint(n))
	for m := 0; m < 1<<uint(n); m++ {
		p := make(atpg.Pattern, n)
		for i, net := range nets {
			p[net] = logic.FromBool(m&(1<<uint(i)) != 0)
		}
		out = append(out, p)
	}
	return out, nil
}

// maxPairSpaceBits bounds the enumerated pair spaces.
const maxPairSpaceBits = 18

// SpaceLimitError is a typed PairSpace failure: the mode's pair space
// needs more bits than maxPairSpaceBits allows to enumerate.
type SpaceLimitError struct {
	Mode  Mode
	Bits  int // bits the space would span
	Limit int // the maxPairSpaceBits cap
}

func (e *SpaceLimitError) Error() string {
	return fmt.Sprintf("seq: %s pair space needs %d bits (limit %d)", e.Mode, e.Bits, e.Limit)
}

// ModeError is a typed PairSpace failure naming a Mode outside the
// declared enum.
type ModeError struct{ Mode Mode }

func (e *ModeError) Error() string { return fmt.Sprintf("seq: unknown mode %v", e.Mode) }

// PairSpace enumerates every vector pair the application mode can deliver
// to the combinational core. The total search space must stay within
// maxPairSpaceBits bits.
func (s *Circuit) PairSpace(mode Mode) ([]atpg.TwoPattern, error) {
	nFF, nPI := len(s.FFs), len(s.PIs)
	bits := map[Mode]int{
		EnhancedScan:    2*nFF + 2*nPI,
		LaunchOnShift:   nFF + 2*nPI + 1,
		LaunchOnCapture: nFF + 2*nPI,
	}[mode]
	if bits > maxPairSpaceBits {
		return nil, &SpaceLimitError{Mode: mode, Bits: bits, Limit: maxPairSpaceBits}
	}
	v1s, err := enumPatterns(s.Core.Inputs)
	if err != nil {
		return nil, err
	}
	pi2s, err := enumPatterns(s.PIs)
	if err != nil {
		return nil, err
	}
	stateOf := func(p atpg.Pattern) State {
		st := make(State, nFF)
		for i, ff := range s.FFs {
			st[i] = p[ff.Q]
		}
		return st
	}
	var out []atpg.TwoPattern
	switch mode {
	case EnhancedScan:
		for _, v1 := range v1s {
			for _, v2 := range v1s {
				out = append(out, atpg.TwoPattern{V1: v1, V2: v2})
			}
		}
	case LaunchOnShift:
		for _, v1 := range v1s {
			st1 := stateOf(v1)
			for _, scanIn := range []logic.Value{logic.Zero, logic.One} {
				st2 := make(State, nFF)
				prev := scanIn
				for i := range st1 {
					st2[i] = prev
					prev = st1[i]
				}
				for _, pi2 := range pi2s {
					v2, err := s.CoreAssign(st2, pi2)
					if err != nil {
						return nil, err
					}
					out = append(out, atpg.TwoPattern{V1: v1, V2: v2})
				}
			}
		}
	case LaunchOnCapture:
		for _, v1 := range v1s {
			st1 := stateOf(v1)
			pi1 := make(atpg.Pattern, nPI)
			for _, in := range s.PIs {
				pi1[in] = v1[in]
			}
			st2, err := s.NextState(st1, pi1)
			if err != nil {
				return nil, err
			}
			complete := true
			for _, v := range st2 {
				if !v.IsKnown() {
					complete = false
				}
			}
			if !complete {
				continue
			}
			for _, pi2 := range pi2s {
				v2, err := s.CoreAssign(st2, pi2)
				if err != nil {
					return nil, err
				}
				out = append(out, atpg.TwoPattern{V1: v1, V2: v2})
			}
		}
	default:
		return nil, &ModeError{Mode: mode}
	}
	return out, nil
}

// GenerateTest searches the mode's pair space for a test of the core OBD
// fault.
func (s *Circuit) GenerateTest(f fault.OBD, mode Mode) (*atpg.TwoPattern, atpg.Status) {
	space, err := s.PairSpace(mode)
	if err != nil {
		return nil, atpg.Aborted
	}
	pg := atpg.NewPairGrader(s.Core, space)
	//obdcheck:allow paniccontract — PairSpace bounds the space to maxPairSpaceBits, so PackPatterns' input-count precondition holds
	if i := pg.FirstDetecting(f); i >= 0 {
		return &space[i], atpg.Detected
	}
	return nil, atpg.Untestable
}

// ModeCoverage grades every OBD fault of the core against the full pair
// space of one application mode (exhaustive, via the bit-parallel fault
// simulator).
func (s *Circuit) ModeCoverage(mode Mode) (atpg.Coverage, error) {
	space, err := s.PairSpace(mode)
	if err != nil {
		return atpg.Coverage{}, err
	}
	faults, _ := fault.OBDUniverse(s.Core)
	pg := atpg.NewPairGrader(s.Core, space)
	cov := atpg.Coverage{Total: len(faults)}
	for _, f := range faults {
		//obdcheck:allow paniccontract — PairSpace bounds the space to maxPairSpaceBits, so PackPatterns' input-count precondition holds
		if pg.Detects(f) {
			cov.Detected++
		} else {
			cov.Undetected = append(cov.Undetected, f.String())
		}
	}
	return cov, nil
}
