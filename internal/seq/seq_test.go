package seq

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"gobd/internal/atpg"
	"gobd/internal/fault"
	"gobd/internal/logic"
)

func TestNewValidation(t *testing.T) {
	core := logic.C17()
	if _, err := New(core, []FF{{Q: "nope", D: "n22"}}); err == nil {
		t.Fatal("bad Q accepted")
	}
	if _, err := New(core, []FF{{Q: "i1", D: "ghost"}}); err == nil {
		t.Fatal("undriven D accepted")
	}
	if _, err := New(core, []FF{{Q: "i1", D: "n22"}, {Q: "i1", D: "n23"}}); err == nil {
		t.Fatal("double-fed Q accepted")
	}
	s, err := New(core, []FF{{Q: "i1", D: "n22"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.PIs) != 4 {
		t.Fatalf("PIs = %v", s.PIs)
	}
}

func TestAccumulatorNextState(t *testing.T) {
	s, err := Accumulator(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.FFs) != 3 || len(s.PIs) != 4 {
		t.Fatalf("structure: %d FFs, PIs %v", len(s.FFs), s.PIs)
	}
	// state=3 (011), b=2 (010), cin=1 -> next state = 3+2+1 = 6 (110).
	st := State{logic.One, logic.One, logic.Zero}
	pi := atpg.Pattern{"b0": logic.Zero, "b1": logic.One, "b2": logic.Zero, "cin": logic.One}
	next, err := s.NextState(st, pi)
	if err != nil {
		t.Fatal(err)
	}
	want := State{logic.Zero, logic.One, logic.One}
	for i := range want {
		if next[i] != want[i] {
			t.Fatalf("next state %v, want %v", next, want)
		}
	}
}

func TestModeStrings(t *testing.T) {
	if EnhancedScan.String() != "enhanced-scan" ||
		LaunchOnShift.String() != "launch-on-shift" ||
		LaunchOnCapture.String() != "launch-on-capture" {
		t.Fatal("mode strings broken")
	}
}

func TestPairSpaceSizes(t *testing.T) {
	s, err := Accumulator(2)
	if err != nil {
		t.Fatal(err)
	}
	// Core inputs: a0,a1,b0,b1,cin = 5 bits; PIs = 3.
	es, err := s.PairSpace(EnhancedScan)
	if err != nil {
		t.Fatal(err)
	}
	if len(es) != 32*32 {
		t.Fatalf("enhanced space %d, want 1024", len(es))
	}
	los, err := s.PairSpace(LaunchOnShift)
	if err != nil {
		t.Fatal(err)
	}
	if len(los) != 32*2*8 {
		t.Fatalf("LOS space %d, want 512", len(los))
	}
	loc, err := s.PairSpace(LaunchOnCapture)
	if err != nil {
		t.Fatal(err)
	}
	if len(loc) != 32*8 {
		t.Fatalf("LOC space %d, want 256", len(loc))
	}
}

func TestPairSpaceConstraints(t *testing.T) {
	s, err := Accumulator(2)
	if err != nil {
		t.Fatal(err)
	}
	// Every LOC pair's second state must equal the next-state function of
	// the first vector.
	loc, err := s.PairSpace(LaunchOnCapture)
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range loc {
		st1 := make(State, len(s.FFs))
		pi1 := atpg.Pattern{}
		for i, ff := range s.FFs {
			st1[i] = tp.V1[ff.Q]
		}
		for _, in := range s.PIs {
			pi1[in] = tp.V1[in]
		}
		want, err := s.NextState(st1, pi1)
		if err != nil {
			t.Fatal(err)
		}
		for i, ff := range s.FFs {
			if tp.V2[ff.Q] != want[i] {
				t.Fatalf("LOC pair %v violates next-state constraint", tp)
			}
		}
	}
	// Every LOS pair's second state must be a shift of the first.
	los, err := s.PairSpace(LaunchOnShift)
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range los {
		for i := 1; i < len(s.FFs); i++ {
			if tp.V2[s.FFs[i].Q] != tp.V1[s.FFs[i-1].Q] {
				t.Fatalf("LOS pair %v violates shift constraint", tp)
			}
		}
	}
}

func TestModeCoverageOrdering(t *testing.T) {
	s, err := Accumulator(2)
	if err != nil {
		t.Fatal(err)
	}
	enh, err := s.ModeCoverage(EnhancedScan)
	if err != nil {
		t.Fatal(err)
	}
	los, err := s.ModeCoverage(LaunchOnShift)
	if err != nil {
		t.Fatal(err)
	}
	loc, err := s.ModeCoverage(LaunchOnCapture)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("enhanced %v, LOS %v, LOC %v", enh, los, loc)
	if los.Detected > enh.Detected || loc.Detected > enh.Detected {
		t.Fatalf("constrained mode exceeded enhanced scan: %v %v %v", enh, los, loc)
	}
	if enh.Detected == 0 {
		t.Fatal("enhanced scan detected nothing")
	}
}

func TestGenerateTestDetects(t *testing.T) {
	s, err := Accumulator(2)
	if err != nil {
		t.Fatal(err)
	}
	faults, _ := fault.OBDUniverse(s.Core)
	for _, mode := range []Mode{EnhancedScan, LaunchOnShift, LaunchOnCapture} {
		for k := 0; k < 6; k++ {
			f := faults[k*len(faults)/6]
			tp, st := s.GenerateTest(f, mode)
			if st != atpg.Detected {
				continue
			}
			if !atpg.DetectsOBD(s.Core, f, *tp) {
				t.Fatalf("%v test for %s does not detect", mode, f)
			}
		}
	}
}

func TestPairSpaceTooLarge(t *testing.T) {
	s, err := Accumulator(5) // 11 core inputs -> enhanced needs 22 bits
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.PairSpace(EnhancedScan); err == nil {
		t.Fatal("oversized space accepted")
	}
}

// TestQuickNextStateMatchesAddition: the accumulator next-state function
// is addition for random states and operands.
func TestQuickNextStateMatchesAddition(t *testing.T) {
	s, err := Accumulator(4)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := rng.Intn(16)
		b := rng.Intn(16)
		cin := rng.Intn(2)
		st := make(State, 4)
		pi := atpg.Pattern{"cin": logic.FromBool(cin == 1)}
		for i := 0; i < 4; i++ {
			st[i] = logic.FromBool(a&(1<<i) != 0)
			pi["b"+string(rune('0'+i))] = logic.FromBool(b&(1<<i) != 0)
		}
		next, err := s.NextState(st, pi)
		if err != nil {
			return false
		}
		sum := a + b + cin
		for i := 0; i < 4; i++ {
			if next[i] != logic.FromBool(sum&(1<<i) != 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestEnumLimitError: oversized enumerations surface as a matchable
// *EnumLimitError instead of the panic they used to raise.
func TestEnumLimitError(t *testing.T) {
	nets := make([]string, enumLimit+1)
	for i := range nets {
		nets[i] = fmt.Sprintf("n%d", i)
	}
	_, err := enumPatterns(nets)
	var ele *EnumLimitError
	if !errors.As(err, &ele) {
		t.Fatalf("got %T (%v), want *EnumLimitError", err, err)
	}
	if ele.Nets != enumLimit+1 || ele.Limit != enumLimit {
		t.Fatalf("EnumLimitError fields = %+v", *ele)
	}
	if ps, err := enumPatterns(nets[:3]); err != nil || len(ps) != 8 {
		t.Fatalf("in-limit enumeration: %d patterns, err %v", len(ps), err)
	}
}
