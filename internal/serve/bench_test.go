package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
)

// benchNetlist is the determinism suite's NAND-only ripple-carry adder —
// large enough that grading dominates HTTP overhead.
const benchNetlist = "circuit rca\n" +
	"input a0 b0 a1 b1 cin\n" +
	"output s0 s1 cout\n" +
	"nand n1 w1 a0 b0\n" +
	"nand n2 w2 a0 w1\n" +
	"nand n3 w3 b0 w1\n" +
	"nand n4 x0 w2 w3\n" +
	"nand n5 w5 x0 cin\n" +
	"nand n6 w6 x0 w5\n" +
	"nand n7 w7 cin w5\n" +
	"nand n8 s0 w6 w7\n" +
	"nand n9 c1 w1 w5\n" +
	"nand m1 v1 a1 b1\n" +
	"nand m2 v2 a1 v1\n" +
	"nand m3 v3 b1 v1\n" +
	"nand m4 x1 v2 v3\n" +
	"nand m5 v5 x1 c1\n" +
	"nand m6 v6 x1 v5\n" +
	"nand m7 v7 c1 v5\n" +
	"nand m8 s1 v6 v7\n" +
	"nand m9 cout v1 v5\n"

// BenchmarkServeGrade measures the /v1/grade hot path end to end over
// httptest. "cold" disables the cache, so every request pays parse +
// fingerprint + bit-parallel grading; "warm" repeats one request against
// the LRU, so it pays parse + fingerprint + digest and must never
// recompute (asserted via the Computed counter). The gap between the two
// is exactly what the cache buys. Numbers live in EXPERIMENTS.md.
func BenchmarkServeGrade(b *testing.B) {
	var pairs []WirePair
	for i := 0; i < 64; i++ {
		pairs = append(pairs, WirePair{
			V1: fmt.Sprintf("%05b", (7*i+3)%32),
			V2: fmt.Sprintf("%05b", (11*i+5)%32),
		})
	}
	body, err := json.Marshal(GradeRequest{Netlist: benchNetlist, Tests: pairs})
	if err != nil {
		b.Fatal(err)
	}

	run := func(b *testing.B, s *Server, ts *httptest.Server) {
		b.Helper()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			resp, err := http.Post(ts.URL+"/v1/grade", "application/json", bytes.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			if resp.StatusCode != 200 {
				b.Fatalf("status %d", resp.StatusCode)
			}
			resp.Body.Close()
		}
	}

	b.Run("cold", func(b *testing.B) {
		s, err := New(Config{CacheEntries: -1})
		if err != nil {
			b.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		run(b, s, ts)
		if got := s.Metrics().Computed.Value(); got != int64(b.N) {
			b.Fatalf("computed = %d, want %d (cache must be off)", got, b.N)
		}
	})
	b.Run("warm", func(b *testing.B) {
		s, err := New(Config{})
		if err != nil {
			b.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		// Prime the cache outside the timed region.
		resp, err := http.Post(ts.URL+"/v1/grade", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		b.ResetTimer()
		run(b, s, ts)
		if got := s.Metrics().Computed.Value(); got != 1 {
			b.Fatalf("computed = %d, want 1 (hits must not recompute)", got)
		}
	})
}
