package serve

import (
	"container/list"
	"sync"
)

// lruCache is a bounded LRU over finished response bodies, keyed by the
// request digest. Values are the exact bytes the compute path wrote, so
// a hit is byte-identical to a recomputation by construction (the
// determinism property test closes the loop end to end). Only complete,
// successful responses are ever inserted; errors and cancelled runs are
// never cached (see DESIGN.md §10).
type lruCache struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List // front = most recently used
	entries map[string]*list.Element
	bytes   int64
}

type lruEntry struct {
	key  string
	body []byte
}

// newLRUCache builds a cache bounded to max entries (0 disables caching).
func newLRUCache(max int) *lruCache {
	return &lruCache{cap: max, ll: list.New(), entries: make(map[string]*list.Element)}
}

// get returns the cached body and marks the entry most recently used.
func (c *lruCache) get(key string) ([]byte, bool) {
	if c.cap <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).body, true
}

// put inserts (or refreshes) a body, evicting the least recently used
// entries beyond capacity.
func (c *lruCache) put(key string, body []byte) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.bytes += int64(len(body)) - int64(len(el.Value.(*lruEntry).body))
		el.Value.(*lruEntry).body = body
		c.ll.MoveToFront(el)
		return
	}
	c.entries[key] = c.ll.PushFront(&lruEntry{key: key, body: body})
	c.bytes += int64(len(body))
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		if oldest == nil {
			break
		}
		e := oldest.Value.(*lruEntry)
		c.ll.Remove(oldest)
		delete(c.entries, e.key)
		c.bytes -= int64(len(e.body))
	}
}

// stats reports entry and byte counts for /metrics.
func (c *lruCache) stats() (entries int, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len(), c.bytes
}
