package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// ripple8 is a larger DUT for the determinism property: a NAND-only
// 4-bit ripple-carry adder netlist, rendered once via the logic package.
func ripple8(t *testing.T) string {
	t.Helper()
	return "circuit rca\n" +
		"input a0 b0 a1 b1 cin\n" +
		"output s0 s1 cout\n" +
		"nand n1 w1 a0 b0\n" +
		"nand n2 w2 a0 w1\n" +
		"nand n3 w3 b0 w1\n" +
		"nand n4 x0 w2 w3\n" +
		"nand n5 w5 x0 cin\n" +
		"nand n6 w6 x0 w5\n" +
		"nand n7 w7 cin w5\n" +
		"nand n8 s0 w6 w7\n" +
		"nand n9 c1 w1 w5\n" +
		"nand m1 v1 a1 b1\n" +
		"nand m2 v2 a1 v1\n" +
		"nand m3 v3 b1 v1\n" +
		"nand m4 x1 v2 v3\n" +
		"nand m5 v5 x1 c1\n" +
		"nand m6 v6 x1 v5\n" +
		"nand m7 v7 c1 v5\n" +
		"nand m8 s1 v6 v7\n" +
		"nand m9 cout v1 v5\n"
}

// detRequests are the representative workloads of the wire-determinism
// property: one per compute-heavy endpoint, all fully seeded.
func detRequests(t *testing.T) map[string]any {
	rca := ripple8(t)
	var pairs []WirePair
	for i := 0; i < 12; i++ {
		pairs = append(pairs, WirePair{
			V1: fmt.Sprintf("%05b", (7*i+3)%32),
			V2: fmt.Sprintf("%05b", (11*i+5)%32),
		})
	}
	return map[string]any{
		"/v1/grade":   GradeRequest{Netlist: rca, Tests: pairs},
		"/v1/atpg":    ATPGRequest{Netlist: rca, Prune: true},
		"/v1/lint":    LintRequest{Netlist: rca},
		"/v1/mission": MissionRequest{Netlist: rca, Seed: 42, Chips: 6, Duration: 500, FaultRate: 1, PerChip: true},
	}
}

// TestWireDeterminism is the tentpole property: the same request body
// yields byte-identical JSON regardless of worker count (1, 2, 8) and
// cache state (cold vs warm).
func TestWireDeterminism(t *testing.T) {
	reqs := detRequests(t)
	// reference[endpoint] = body from the first configuration.
	reference := map[string][]byte{}
	for _, workers := range []int{1, 2, 8} {
		_, ts := newTestServer(t, Config{Workers: workers})
		for endpoint, req := range reqs {
			for pass, wantSource := range []string{"computed", "cache"} {
				status, body, resp := post(t, ts.URL+endpoint, req)
				if status != 200 {
					t.Fatalf("workers=%d %s pass %d: status %d: %s", workers, endpoint, pass, status, body)
				}
				if got := resp.Header.Get("Obdserve-Source"); got != wantSource {
					t.Fatalf("workers=%d %s pass %d: source %q, want %q", workers, endpoint, pass, got, wantSource)
				}
				if ref, ok := reference[endpoint]; !ok {
					reference[endpoint] = body
				} else if !bytes.Equal(ref, body) {
					t.Fatalf("workers=%d %s pass %d: body differs from reference\nref: %s\ngot: %s", workers, endpoint, pass, ref, body)
				}
			}
		}
	}
}

// TestSingleFlightCoalescing launches 16 identical concurrent requests
// against a gated server: exactly one computation runs, the other 15 are
// served from its flight, asserted via the hit/miss counters. The gate
// plus the parked-waiter poll make the ordering deterministic (no sleeps
// racing the compute).
func TestSingleFlightCoalescing(t *testing.T) {
	const clients = 16
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	s.computeGate = gate
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := detRequests(t)["/v1/grade"]
	bodies := make([][]byte, clients)
	status := make([]int, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status[i], bodies[i], _ = postNoFatal(t, ts.URL+"/v1/grade", req)
		}(i)
	}
	// The leader is parked on the gate; wait until the other 15 are all
	// parked on its flight, then release.
	deadline := time.Now().Add(10 * time.Second)
	for s.flights.parked() != clients-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d followers parked", s.flights.parked(), clients-1)
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()

	for i := 0; i < clients; i++ {
		if status[i] != 200 {
			t.Fatalf("client %d: status %d: %s", i, status[i], bodies[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("client %d body differs", i)
		}
	}
	m := s.Metrics()
	if m.Computed.Value() != 1 {
		t.Fatalf("computed = %d, want 1", m.Computed.Value())
	}
	if m.Coalesced.Value() != clients-1 {
		t.Fatalf("coalesced = %d, want %d", m.Coalesced.Value(), clients-1)
	}
	if m.CacheHits.Value() != 0 || m.CacheMisses.Value() != clients {
		t.Fatalf("hits/misses = %d/%d, want 0/%d", m.CacheHits.Value(), m.CacheMisses.Value(), clients)
	}
}

// postNoFatal is post for goroutines (no t.Fatal off the test goroutine).
func postNoFatal(t *testing.T, url string, req any) (int, []byte, *http.Response) {
	body, err := jsonBody(req)
	if err != nil {
		t.Error(err)
		return 0, nil, nil
	}
	resp, err := http.Post(url, "application/json", body)
	if err != nil {
		t.Error(err)
		return 0, nil, nil
	}
	defer resp.Body.Close()
	out := new(bytes.Buffer)
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Error(err)
		return 0, nil, nil
	}
	return resp.StatusCode, out.Bytes(), resp
}

func jsonBody(v any) (*bytes.Reader, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return bytes.NewReader(b), nil
}

// TestClientDisconnectMidCompute cancels the leader's request while its
// computation is parked on the gate: the run must never be cached, the
// Canceled counter must tick, and a later identical request must
// recompute the full, byte-identical result (the user-visible face of
// the scheduler's deterministic-prefix cancellation semantics: partial
// work is discarded, never served).
func TestClientDisconnectMidCompute(t *testing.T) {
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	s.computeGate = gate
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := detRequests(t)["/v1/grade"]
	b, err := jsonBody(req)
	if err != nil {
		t.Fatal(err)
	}
	// Drive the handler directly with a cancellable request context —
	// the same signal net/http delivers on a client disconnect, minus
	// the TCP-timing nondeterminism.
	ctx, cancel := context.WithCancel(context.Background())
	hr := httptest.NewRequest(http.MethodPost, "/v1/grade", b).WithContext(ctx)
	rec := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		s.handleGrade(rec, hr)
		close(done)
	}()
	// Wait for the request to be admitted (parked on the gate), then
	// vanish like an impatient client.
	deadline := time.Now().Add(10 * time.Second)
	for s.queue.inFlight() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("request never admitted")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	close(gate)
	<-done

	// The handler noticed the dead client; nothing may enter the cache.
	if got := s.Metrics().Canceled.Value(); got != 1 {
		t.Fatalf("canceled = %d, want 1", got)
	}
	if entries, _ := s.cache.stats(); entries != 0 {
		t.Fatalf("cancelled run was cached (%d entries)", entries)
	}

	// A patient client now gets the full result, computed fresh and
	// byte-identical to an undisturbed server's answer.
	s.computeGate = nil
	status, body, resp := post(t, ts.URL+"/v1/grade", req)
	if status != 200 || resp.Header.Get("Obdserve-Source") != "computed" {
		t.Fatalf("retry: status %d source %q", status, resp.Header.Get("Obdserve-Source"))
	}
	_, ref := newTestServer(t, Config{})
	refStatus, refBody, _ := post(t, ref.URL+"/v1/grade", req)
	if refStatus != 200 || !bytes.Equal(body, refBody) {
		t.Fatalf("post-disconnect result differs from reference\ngot: %s\nref: %s", body, refBody)
	}
}

// TestFollowerRetryAfterLeaderDisconnect parks a leader and a follower on
// the same flight, kills only the leader's client, and checks the
// follower retries into leadership and still gets the full result.
func TestFollowerRetryAfterLeaderDisconnect(t *testing.T) {
	s, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	s.computeGate = gate
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := detRequests(t)["/v1/grade"]
	leaderBody, err := jsonBody(req)
	if err != nil {
		t.Fatal(err)
	}
	// Leader driven directly so its context cancellation is exact, not
	// subject to TCP disconnect-detection timing.
	leaderCtx, killLeader := context.WithCancel(context.Background())
	lr := httptest.NewRequest(http.MethodPost, "/v1/grade", leaderBody).WithContext(leaderCtx)
	leaderDone := make(chan struct{})
	go func() {
		s.handleGrade(httptest.NewRecorder(), lr)
		close(leaderDone)
	}()
	deadline := time.Now().Add(10 * time.Second)
	for s.queue.inFlight() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("leader never admitted")
		}
		time.Sleep(time.Millisecond)
	}

	followerStatus := make(chan int, 1)
	followerBody := make(chan []byte, 1)
	go func() {
		st, b, _ := postNoFatal(t, ts.URL+"/v1/grade", req)
		followerStatus <- st
		followerBody <- b
	}()
	for s.flights.parked() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("follower never parked")
		}
		time.Sleep(time.Millisecond)
	}

	killLeader()
	<-leaderDone
	// Unblock computes: the follower's retry passes the gate from here.
	close(gate)

	if st := <-followerStatus; st != 200 {
		t.Fatalf("follower status %d", st)
	}
	body := <-followerBody
	_, ref := newTestServer(t, Config{})
	_, refBody, _ := post(t, ref.URL+"/v1/grade", req)
	if !bytes.Equal(body, refBody) {
		t.Fatalf("follower result differs from reference\ngot: %s\nref: %s", body, refBody)
	}
	if got := s.Metrics().Computed.Value(); got != 1 {
		t.Fatalf("computed = %d, want 1 (the follower's retry)", got)
	}
}
