package serve

import (
	"context"
	"net/http"

	"gobd/internal/atpg"
	"gobd/internal/fault"
	"gobd/internal/logic"
	"gobd/internal/mission"
	"gobd/internal/netcheck"
	"gobd/internal/seq"
)

// handleGrade grades a pattern set against a fault universe (POST).
func (s *Server) handleGrade(w http.ResponseWriter, r *http.Request) {
	if !s.requirePost(w, r, "grade") {
		return
	}
	var req GradeRequest
	if aerr := s.decodeJSON(w, r, &req); aerr != nil {
		s.writeError(w, aerr)
		return
	}
	s.serveJob(w, r, func() (*job, *apiError) {
		c, aerr := parseNetlist(req.Netlist, true)
		if aerr != nil {
			return nil, aerr
		}
		model, aerr := resolveModel(req.Model)
		if aerr != nil {
			return nil, aerr
		}
		// Sequential netlists are graded through the combinational core:
		// vectors span the core's inputs (originals, then state bits in
		// chain order), exactly what the scan hardware can apply.
		core, ffs, aerr := coreOf(c)
		if aerr != nil {
			return nil, aerr
		}
		var pairs []atpg.TwoPattern
		var pats []atpg.Pattern
		switch model {
		case ModelStuckAt:
			if len(req.Tests) > 0 {
				return nil, badRequest(CodeBadRequest, "model %q grades single vectors; use \"patterns\", not \"tests\"", model)
			}
			for i, v := range req.Patterns {
				p, err := parsePattern(v, core)
				if err != nil {
					return nil, badRequest(CodeBadRequest, "patterns[%d]: %v", i, err)
				}
				pats = append(pats, p)
			}
		default: // obd, transition
			if len(req.Patterns) > 0 {
				return nil, badRequest(CodeBadRequest, "model %q grades vector pairs; use \"tests\", not \"patterns\"", model)
			}
			pairs, aerr = parsePairs(req.Tests, core)
			if aerr != nil {
				return nil, aerr
			}
		}
		// Canonicalize the request before hashing so formatting variants
		// of the same workload ("x" vs "X") share a cache entry. The
		// digest covers the ORIGINAL netlist, so a sequential circuit and
		// its bare core occupy distinct entries.
		canon := GradeRequest{Model: model}
		for _, tp := range pairs {
			canon.Tests = append(canon.Tests, WirePair{V1: tp.V1.KeyFor(core), V2: tp.V2.KeyFor(core)})
		}
		for _, p := range pats {
			canon.Patterns = append(canon.Patterns, p.KeyFor(core))
		}
		fp := fingerprintOf(c)
		dig, err := digest("/v1/grade", fp, logic.Format(c), canon)
		if err != nil {
			return nil, coreError(err)
		}
		obdFaults, transFaults, saFaults, nFaults := universe(core, model)
		return &job{
			digest: dig,
			faults: nFaults,
			tests:  len(pairs) + len(pats),
			compute: func(ctx context.Context, sched *atpg.Scheduler) (any, error) {
				var cov atpg.Coverage
				var err error
				switch model {
				case ModelOBD:
					cov, err = sched.GradeOBDCtx(ctx, core, obdFaults, pairs)
				case ModelTransition:
					cov, err = sched.GradeTransitionCtx(ctx, core, transFaults, pairs)
				default:
					cov, err = sched.GradeStuckAtCtx(ctx, core, saFaults, pats)
				}
				if err != nil {
					return nil, err
				}
				return &GradeResponse{
					Circuit:     c.Name,
					Fingerprint: fp.String(),
					Model:       model,
					FFs:         ffs,
					Faults:      nFaults,
					Tests:       len(pairs) + len(pats),
					Coverage:    toWire(cov),
				}, nil
			},
		}, nil
	})
}

// coreOf resolves the circuit a grading job actually runs on: the circuit
// itself when combinational, its combinational core (plus the flip-flop
// count) when sequential.
func coreOf(c *logic.Circuit) (*logic.Circuit, int, *apiError) {
	ffs := len(c.DFFs())
	if ffs == 0 {
		return c, 0, nil
	}
	core, err := c.CombinationalCore()
	if err != nil {
		return nil, 0, badRequest(CodeInvalidCircuit, "%v", err)
	}
	return core, ffs, nil
}

// handleATPG generates a compacted test set for a fault universe (POST).
func (s *Server) handleATPG(w http.ResponseWriter, r *http.Request) {
	if !s.requirePost(w, r, "atpg") {
		return
	}
	var req ATPGRequest
	if aerr := s.decodeJSON(w, r, &req); aerr != nil {
		s.writeError(w, aerr)
		return
	}
	s.serveJob(w, r, func() (*job, *apiError) {
		c, aerr := parseNetlist(req.Netlist, true)
		if aerr != nil {
			return nil, aerr
		}
		model, aerr := resolveModel(req.Model)
		if aerr != nil {
			return nil, aerr
		}
		if req.MaxBacktracks < 0 {
			return nil, badRequest(CodeBadRequest, "max_backtracks must be >= 0, got %d", req.MaxBacktracks)
		}
		// Sequential requests route through the scan-style generators; a
		// DFF-bearing netlist with no explicit style gets enhanced scan.
		styleName := req.Style
		if styleName == "" && c.HasDFF() {
			styleName = "enhanced"
		}
		if styleName != "" {
			return s.seqATPGJob(c, model, styleName, &req)
		}
		if req.Prune && model != ModelOBD {
			return nil, badRequest(CodeBadRequest, "prune applies to the obd model only")
		}
		opt := atpg.DefaultOptions()
		opt.Prune = req.Prune
		if req.MaxBacktracks > 0 {
			opt.MaxBacktracks = req.MaxBacktracks
		}
		fp := fingerprintOf(c)
		canon := ATPGRequest{Model: model, Prune: req.Prune, MaxBacktracks: opt.MaxBacktracks}
		dig, err := digest("/v1/atpg", fp, logic.Format(c), canon)
		if err != nil {
			return nil, coreError(err)
		}
		obdFaults, transFaults, saFaults, nFaults := universe(c, model)
		return &job{
			digest: dig,
			faults: nFaults,
			compute: func(ctx context.Context, sched *atpg.Scheduler) (any, error) {
				resp := &ATPGResponse{
					Circuit:     c.Name,
					Fingerprint: fp.String(),
					Model:       model,
					Faults:      nFaults,
				}
				var results []atpg.Result
				switch model {
				case ModelOBD:
					ts, err := sched.GenerateOBDTestsCtx(ctx, c, obdFaults, opt)
					if err != nil {
						return nil, err
					}
					results = ts.Results
					resp.Coverage = toWire(ts.Coverage)
					for _, tp := range ts.Tests {
						resp.Pairs = append(resp.Pairs, WirePair{V1: tp.V1.KeyFor(c), V2: tp.V2.KeyFor(c)})
					}
				case ModelTransition:
					ts, err := sched.GenerateTransitionTestsCtx(ctx, c, transFaults, opt)
					if err != nil {
						return nil, err
					}
					results = ts.Results
					resp.Coverage = toWire(ts.Coverage)
					for _, tp := range ts.Tests {
						resp.Pairs = append(resp.Pairs, WirePair{V1: tp.V1.KeyFor(c), V2: tp.V2.KeyFor(c)})
					}
				default:
					ts, err := sched.GenerateStuckAtTestsCtx(ctx, c, saFaults, opt)
					if err != nil {
						return nil, err
					}
					results = ts.Results
					resp.Coverage = toWire(ts.Coverage)
					for _, p := range ts.Tests {
						resp.Patterns = append(resp.Patterns, p.KeyFor(c))
					}
				}
				for _, res := range results {
					switch res.Status {
					case atpg.Detected:
						resp.Detected++
					case atpg.Untestable:
						resp.Untestable++
					case atpg.Aborted:
						resp.Aborted++
					case atpg.Errored:
						resp.Errored++
					}
				}
				return resp, nil
			},
		}, nil
	})
}

// seqATPGJob builds the /v1/atpg job for a scan-style request: the
// netlist is lifted into its scan model (internal/seq) and the style's
// generator runs over the combinational core's OBD universe. Results are
// worker-count invariant by construction (per-fault derived seeds).
func (s *Server) seqATPGJob(c *logic.Circuit, model, styleName string, req *ATPGRequest) (*job, *apiError) {
	if model != ModelOBD {
		return nil, badRequest(CodeBadRequest, "scan styles apply to the obd model only, got %q", model)
	}
	if req.Prune {
		return nil, badRequest(CodeBadRequest, "prune applies to the combinational obd generator only")
	}
	st, err := seq.ParseStyle(styleName)
	if err != nil {
		return nil, badRequest(CodeBadRequest, "%v", err)
	}
	sc, err := seq.FromCircuit(c)
	if err != nil {
		return nil, badRequest(CodeInvalidCircuit, "%v", err)
	}
	fp := fingerprintOf(c)
	// Canonical params carry the style in its long form, so "los" and
	// "launch-on-shift" spellings share a cache entry.
	canon := ATPGRequest{Model: model, Style: st.String()}
	dig, err := digest("/v1/atpg", fp, logic.Format(c), canon)
	if err != nil {
		return nil, coreError(err)
	}
	faults, _ := fault.OBDUniverse(sc.Core)
	return &job{
		digest: dig,
		faults: len(faults),
		compute: func(ctx context.Context, sched *atpg.Scheduler) (any, error) {
			res, err := seq.GenerateTestsOn(sched, sc, faults, st, nil)
			if err != nil {
				return nil, err
			}
			resp := &ATPGResponse{
				Circuit:     c.Name,
				Fingerprint: fp.String(),
				Model:       model,
				Style:       st.String(),
				FFs:         len(sc.FFs),
				Faults:      len(faults),
				Coverage:    toWire(res.Coverage),
			}
			for _, tp := range res.Tests {
				resp.Pairs = append(resp.Pairs, WirePair{V1: tp.V1.KeyFor(sc.Core), V2: tp.V2.KeyFor(sc.Core)})
			}
			for _, verdict := range res.Statuses {
				switch verdict {
				case atpg.Detected:
					resp.Detected++
				case atpg.Untestable:
					resp.Untestable++
				case atpg.Aborted:
					resp.Aborted++
				case atpg.Errored:
					resp.Errored++
				}
			}
			return resp, nil
		},
	}, nil
}

// handleLint runs static netlist analysis; unlike the other endpoints it
// accepts circuits that fail structural validation — diagnosing those is
// its purpose (POST).
func (s *Server) handleLint(w http.ResponseWriter, r *http.Request) {
	if !s.requirePost(w, r, "lint") {
		return
	}
	var req LintRequest
	if aerr := s.decodeJSON(w, r, &req); aerr != nil {
		s.writeError(w, aerr)
		return
	}
	s.serveJob(w, r, func() (*job, *apiError) {
		c, aerr := parseNetlist(req.Netlist, false)
		if aerr != nil {
			return nil, aerr
		}
		if req.TopHard < 0 {
			return nil, badRequest(CodeBadRequest, "top_hard must be >= 0, got %d", req.TopHard)
		}
		fp := fingerprintOf(c) // zero when the circuit does not validate
		canon := LintRequest{SkipFaults: req.SkipFaults, TopHard: req.TopHard}
		dig, err := digest("/v1/lint", fp, logic.Format(c), canon)
		if err != nil {
			return nil, coreError(err)
		}
		return &job{
			digest: dig,
			compute: func(ctx context.Context, sched *atpg.Scheduler) (any, error) {
				// Exact is always on: the SAT verdicts are a pure function
				// of the circuit (under the fixed default budget), so the
				// cache digest over (fingerprint, canon) still identifies
				// the response — no cache-key change, no invalidation.
				resp := &LintResponse{Report: netcheck.Analyze(c, netcheck.Options{
					SkipFaults: req.SkipFaults,
					TopHard:    req.TopHard,
					Exact:      true,
				})}
				if fp != (logic.Fingerprint{}) {
					resp.Fingerprint = fp.String()
				}
				return resp, nil
			},
		}, nil
	})
}

// handleMission runs a seeded concurrent-test mission campaign (POST).
func (s *Server) handleMission(w http.ResponseWriter, r *http.Request) {
	if !s.requirePost(w, r, "mission") {
		return
	}
	var req MissionRequest
	if aerr := s.decodeJSON(w, r, &req); aerr != nil {
		s.writeError(w, aerr)
		return
	}
	s.serveJob(w, r, func() (*job, *apiError) {
		c, aerr := parseNetlist(req.Netlist, true)
		if aerr != nil {
			return nil, aerr
		}
		if n := len(c.DFFs()); n > 0 {
			return nil, badRequest(CodeSequential, "mission campaigns are combinational-only; circuit has %d flip-flops", n)
		}
		if req.Chips > s.cfg.MissionMaxChips {
			return nil, badRequest(CodeBadRequest, "chips = %d exceeds the server limit %d", req.Chips, s.cfg.MissionMaxChips)
		}
		adv, aerr := parseAdversity(req.Adversity)
		if aerr != nil {
			return nil, aerr
		}
		fp := fingerprintOf(c)
		// The canonical params include the parsed adversity profile, so
		// spelling variants of the same profile share a cache entry.
		canon := struct {
			MissionRequest
			Profile mission.Adversity `json:"profile"`
		}{MissionRequest: req, Profile: adv}
		canon.Netlist = ""
		canon.Adversity = ""
		dig, err := digest("/v1/mission", fp, logic.Format(c), canon)
		if err != nil {
			return nil, coreError(err)
		}
		return &job{
			digest: dig,
			compute: func(ctx context.Context, sched *atpg.Scheduler) (any, error) {
				camp, err := mission.New(mission.Config{
					Circuit:             c,
					Seed:                req.Seed,
					Chips:               req.Chips,
					Duration:            req.Duration,
					Period:              req.Period,
					FaultRate:           req.FaultRate,
					BISTCycles:          req.BISTCycles,
					Adversity:           adv,
					IncludeUndetectable: req.IncludeUndetectable,
					RecordPerChip:       req.PerChip,
					Scheduler:           sched,
				})
				if err != nil {
					// mission.New only fails on configuration problems —
					// the netlist itself was validated above.
					return nil, badRequest(CodeBadRequest, "%v", err)
				}
				rep, err := camp.Run(ctx)
				if err != nil {
					// Cancelled campaigns have deterministic-prefix
					// semantics (RunReport.Prefix) but are never cached or
					// served; partial data must not masquerade as a result.
					return nil, err
				}
				return &MissionResponse{Circuit: c.Name, Fingerprint: fp.String(), Report: rep}, nil
			},
		}, nil
	})
}

// resolveModel normalizes and validates the wire model name.
func resolveModel(m string) (string, *apiError) {
	switch m {
	case "":
		return ModelOBD, nil
	case ModelOBD, ModelTransition, ModelStuckAt:
		return m, nil
	default:
		return "", badRequest(CodeBadRequest, "unknown model %q (want obd, transition or stuckat)", m)
	}
}

// universe enumerates the fault list for a model up front (cheap, linear
// in circuit size) so handlers can report batch telemetry before compute.
func universe(c *logic.Circuit, model string) (obd []fault.OBD, trans []fault.Transition, sa []fault.StuckAt, n int) {
	switch model {
	case ModelOBD:
		obd, _ = fault.OBDUniverse(c)
		n = len(obd)
	case ModelTransition:
		trans = fault.TransitionUniverse(c)
		n = len(trans)
	default:
		sa = fault.StuckAtUniverse(c)
		n = len(sa)
	}
	return obd, trans, sa, n
}
