package serve

import (
	"errors"
	"net/http"

	"gobd/internal/jobs"
	"gobd/internal/store"
)

// JobSubmitRequest is the POST /v1/jobs body — exactly a jobs.Spec:
// {"kind": "mission"|"atpg", "netlist": "...", "mission": {...}} or
// {"kind": "atpg", "netlist": "...", "atpg": {...}}.
type JobSubmitRequest = jobs.Spec

// JobResponse is the snapshot returned by the job endpoints.
type JobResponse = jobs.Job

// Wire error codes of the job endpoints.
const (
	CodeJobNotFound     = "job-not-found"
	CodeJobNotDone      = "job-not-done"
	CodeArtifactCorrupt = "artifact-corrupt"
	CodeDraining        = "draining"
)

// jobsError maps the jobs runtime's typed errors to wire errors: 404
// for unknown IDs, 409 for premature result fetches, 400 for invalid
// specs, and 503 for draining or a quarantined artifact (the job is
// already requeued for recompute — the client retries).
func jobsError(err error) *apiError {
	var nfe *jobs.NotFoundError
	if errors.As(err, &nfe) {
		return &apiError{status: http.StatusNotFound, code: CodeJobNotFound, msg: nfe.Error()}
	}
	var nde *jobs.NotDoneError
	if errors.As(err, &nde) {
		return &apiError{status: http.StatusConflict, code: CodeJobNotDone, msg: nde.Error()}
	}
	var se *jobs.SpecError
	if errors.As(err, &se) {
		return &apiError{status: http.StatusBadRequest, code: CodeBadRequest, msg: se.Error()}
	}
	if errors.Is(err, jobs.ErrDraining) {
		return &apiError{status: http.StatusServiceUnavailable, code: CodeDraining, msg: "server is draining; jobs are checkpointed for restart"}
	}
	var cae *store.CorruptArtifactError
	if errors.As(err, &cae) || errors.Is(err, store.ErrNotFound) {
		return &apiError{status: http.StatusServiceUnavailable, code: CodeArtifactCorrupt,
			msg: "stored artifact failed verification and was quarantined; the job is recomputing — retry shortly"}
	}
	return &apiError{status: http.StatusInternalServerError, code: CodeInternal, msg: err.Error()}
}

// handleJobSubmit accepts a durable job (POST /v1/jobs, 202).
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	s.metrics.endpoint("jobs")
	if s.draining.Load() {
		s.writeError(w, &apiError{status: http.StatusServiceUnavailable, code: CodeDraining, msg: "server is draining"})
		return
	}
	var req JobSubmitRequest
	if aerr := s.decodeJSON(w, r, &req); aerr != nil {
		s.writeError(w, aerr)
		return
	}
	snap, err := s.jobs.Submit(req)
	if err != nil {
		s.writeError(w, jobsError(err))
		return
	}
	s.writeJSON(w, http.StatusAccepted, snap)
}

// handleJobGet reports a job snapshot (GET /v1/jobs/{id}).
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	s.metrics.endpoint("jobs")
	snap, err := s.jobs.Get(r.PathValue("id"))
	if err != nil {
		s.writeError(w, jobsError(err))
		return
	}
	s.writeJSON(w, http.StatusOK, snap)
}

// handleJobResult streams a done job's artifact verbatim (GET
// /v1/jobs/{id}/result) — byte-identical to the synchronous endpoint's
// response for the same canonical request.
func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	s.metrics.endpoint("jobs")
	body, err := s.jobs.Result(r.PathValue("id"))
	if err != nil {
		s.writeError(w, jobsError(err))
		return
	}
	s.writeBody(w, body, "job")
}

// handleJobCancel cancels a job (POST /v1/jobs/{id}/cancel). Queued
// jobs cancel immediately, running ones at the next checkpoint.
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	s.metrics.endpoint("jobs")
	snap, err := s.jobs.Cancel(r.PathValue("id"))
	if err != nil {
		s.writeError(w, jobsError(err))
		return
	}
	s.writeJSON(w, http.StatusOK, snap)
}
