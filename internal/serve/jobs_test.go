package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"

	"gobd/internal/jobs"
)

// jobMissionBody is the wire spec used across the job tests.
func jobMissionBody() JobSubmitRequest {
	return JobSubmitRequest{
		Kind:    jobs.KindMission,
		Netlist: nand2,
		Mission: &jobs.MissionSpec{Seed: 7, Chips: 8, Duration: 1000, FaultRate: 2, PerChip: true},
	}
}

func newJobServer(t *testing.T, dataDir string) (*Server, string) {
	t.Helper()
	s, ts := newTestServer(t, Config{DataDir: dataDir, SegmentChips: 3, SegmentFaults: 4})
	t.Cleanup(s.Close)
	return s, ts.URL
}

// readAll drains and closes a GET response body.
func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// pollJob polls GET /v1/jobs/{id} until the wanted state.
func pollJob(t *testing.T, url, id, want string) JobResponse {
	t.Helper()
	for i := 0; i < 2000; i++ {
		resp, err := http.Get(url + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var snap JobResponse
		if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if string(snap.State) == want {
			return snap
		}
		if snap.State == jobs.StateFailed && want != "failed" {
			t.Fatalf("job failed: %s", snap.Error)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
	return JobResponse{}
}

// TestJobRoundTripMatchesSync: submit→poll→fetch over HTTP, and the job
// artifact is byte-identical to the synchronous /v1/mission response
// for the same canonical request — the extension of the determinism
// contract to the durable path.
func TestJobRoundTripMatchesSync(t *testing.T) {
	_, url := newJobServer(t, t.TempDir())

	spec := jobMissionBody()
	status, body, _ := post(t, url+"/v1/jobs", spec)
	if status != http.StatusAccepted {
		t.Fatalf("submit status = %d: %s", status, body)
	}
	var snap JobResponse
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.ID == "" || snap.Kind != jobs.KindMission || snap.Total != 8 {
		t.Fatalf("submit snapshot = %+v", snap)
	}
	pollJob(t, url, snap.ID, "done")

	resp, err := http.Get(url + "/v1/jobs/" + snap.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	artifact := readAll(t, resp)
	if resp.StatusCode != 200 || resp.Header.Get("Obdserve-Source") != "job" {
		t.Fatalf("result status=%d source=%q", resp.StatusCode, resp.Header.Get("Obdserve-Source"))
	}

	ms := spec.Mission
	status, syncBody, _ := post(t, url+"/v1/mission", MissionRequest{
		Netlist: spec.Netlist, Seed: ms.Seed, Chips: ms.Chips, Duration: ms.Duration,
		FaultRate: ms.FaultRate, PerChip: ms.PerChip,
	})
	if status != 200 {
		t.Fatalf("sync mission status = %d: %s", status, syncBody)
	}
	if !bytes.Equal(artifact, syncBody) {
		t.Fatalf("job artifact diverges from synchronous response:\n job %s\nsync %s", artifact, syncBody)
	}

	// Resubmitting the same spec dedupes onto the done job.
	status, body, _ = post(t, url+"/v1/jobs", spec)
	if status != http.StatusAccepted {
		t.Fatalf("resubmit status = %d", status)
	}
	var again JobResponse
	if err := json.Unmarshal(body, &again); err != nil {
		t.Fatal(err)
	}
	if again.ID != snap.ID || again.State != jobs.StateDone {
		t.Fatalf("resubmit = %+v", again)
	}
}

// TestJobErrorPaths: the typed wire errors of the job endpoints.
func TestJobErrorPaths(t *testing.T) {
	_, url := newJobServer(t, t.TempDir())

	// Unknown IDs are 404 job-not-found everywhere.
	resp, err := http.Get(url + "/v1/jobs/jdeadbeef")
	if err != nil {
		t.Fatal(err)
	}
	wantErrorCode(t, resp.StatusCode, readAll(t, resp), 404, CodeJobNotFound)
	resp, err = http.Get(url + "/v1/jobs/jdeadbeef/result")
	if err != nil {
		t.Fatal(err)
	}
	wantErrorCode(t, resp.StatusCode, readAll(t, resp), 404, CodeJobNotFound)
	status, body, _ := post(t, url+"/v1/jobs/jdeadbeef/cancel", struct{}{})
	wantErrorCode(t, status, body, 404, CodeJobNotFound)

	// Invalid specs are 400s.
	status, body, _ = post(t, url+"/v1/jobs", JobSubmitRequest{Kind: "bake", Netlist: nand2})
	wantErrorCode(t, status, body, 400, CodeBadRequest)
	status, body, _ = post(t, url+"/v1/jobs", JobSubmitRequest{Kind: jobs.KindMission, Netlist: "circuit g\nbogus\n",
		Mission: &jobs.MissionSpec{Chips: 1, Duration: 1}})
	wantErrorCode(t, status, body, 400, CodeBadRequest)

	// Wrong method on the collection is a 405 from the method router.
	resp, err = http.Get(url + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/jobs = %d, want 405", resp.StatusCode)
	}
}

// TestJobsDisabledWithoutDataDir: an in-memory server has no job
// routes at all.
func TestJobsDisabledWithoutDataDir(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, _, _ := post(t, ts.URL+"/v1/jobs", jobMissionBody())
	if status != http.StatusNotFound {
		t.Fatalf("POST /v1/jobs without DataDir = %d, want 404", status)
	}
}

// TestDrainThenRestartCompletesJob: a job submitted before SIGTERM-style
// drain survives it — /healthz flips to draining, new submissions get
// 503, and a fresh server over the same data directory finishes the job
// with the same artifact bytes an undisturbed server produces.
func TestDrainThenRestartCompletesJob(t *testing.T) {
	// Reference artifact from an undisturbed server.
	_, refURL := newJobServer(t, t.TempDir())
	status, body, _ := post(t, refURL+"/v1/jobs", jobMissionBody())
	if status != http.StatusAccepted {
		t.Fatalf("ref submit = %d", status)
	}
	var refSnap JobResponse
	if err := json.Unmarshal(body, &refSnap); err != nil {
		t.Fatal(err)
	}
	pollJob(t, refURL, refSnap.ID, "done")
	resp, err := http.Get(refURL + "/v1/jobs/" + refSnap.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	want := readAll(t, resp)

	dir := t.TempDir()
	s, url := newJobServer(t, dir)
	status, body, _ = post(t, url+"/v1/jobs", jobMissionBody())
	if status != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", status, body)
	}
	var snap JobResponse
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.DrainJobs(ctx); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hb := readAll(t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable || !bytes.Contains(hb, []byte(`"draining"`)) {
		t.Fatalf("healthz while draining: %d %s", resp.StatusCode, hb)
	}
	status, body, _ = post(t, url+"/v1/jobs", jobMissionBody())
	wantErrorCode(t, status, body, 503, CodeDraining)
	s.Close()

	// "Restart": a fresh server over the same data directory.
	_, url2 := newJobServer(t, dir)
	done := pollJob(t, url2, snap.ID, "done")
	if done.ID != snap.ID {
		t.Fatalf("restarted job id = %s", done.ID)
	}
	resp, err = http.Get(url2 + "/v1/jobs/" + snap.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	got := readAll(t, resp)
	if !bytes.Equal(got, want) {
		t.Fatal("artifact after drain+restart differs from undisturbed server")
	}
}

// TestStoreIsACrossRestartCache: a synchronous response computed by one
// server process is served from the durable store by the next one,
// byte-identically, without recomputing.
func TestStoreIsACrossRestartCache(t *testing.T) {
	dir := t.TempDir()
	_, url := newJobServer(t, dir)
	req := GradeRequest{Netlist: nand2, Tests: allPairs()}
	status, want, _ := post(t, url+"/v1/grade", req)
	if status != 200 {
		t.Fatalf("grade = %d", status)
	}

	_, url2 := newJobServer(t, dir)
	respStatus, got, resp := post(t, url2+"/v1/grade", req)
	if respStatus != 200 {
		t.Fatalf("grade after restart = %d", respStatus)
	}
	if src := resp.Header.Get("Obdserve-Source"); src != "store" {
		t.Fatalf("Obdserve-Source = %q, want store", src)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("stored response differs across restart")
	}

	// The durable gauges are visible on /metrics.
	mresp, err := http.Get(url2 + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb := readAll(t, mresp)
	for _, key := range []string{`"store_hits"`, `"store_objects"`, `"jobs_queued"`, `"jobs_checkpoints"`} {
		if !bytes.Contains(mb, []byte(key)) {
			t.Fatalf("/metrics missing %s:\n%s", key, mb)
		}
	}
}
