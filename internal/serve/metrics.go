package serve

import (
	"encoding/json"
	"expvar"
)

// Metrics are the server's expvar counters. They are instance-scoped
// (never registered on the global expvar map by the package, so tests
// can build servers freely); cmd/obdserve publishes a snapshot function
// under "obdserve" once per process. Everything here is operational
// telemetry — nothing from this struct may leak into a /v1 response
// body, which is what keeps the wire deterministic under load.
type Metrics struct {
	Requests     expvar.Int // HTTP requests accepted by /v1 handlers
	Computed     expvar.Int // computations actually run (cache+coalesce misses)
	CacheHits    expvar.Int // served straight from the LRU
	CacheMisses  expvar.Int // digest not in cache on arrival
	StoreHits    expvar.Int // served from the durable artifact store (L2)
	Coalesced    expvar.Int // followers served by another request's flight
	Rejected     expvar.Int // 429 backpressure rejections
	Canceled     expvar.Int // requests whose client went away mid-compute
	ClientErrors expvar.Int // 4xx responses (malformed requests)
	ServerErrors expvar.Int // 5xx responses
	BatchFaults  expvar.Int // total faults graded/targeted across requests
	BatchTests   expvar.Int // total patterns/pairs received across requests
	SchedItems   expvar.Int // scheduler work items across per-request pools
	SchedPairs   expvar.Int // scheduler pattern(-pair) simulations

	perEndpoint expvar.Map // requests by endpoint
}

func newMetrics() *Metrics {
	m := &Metrics{}
	m.perEndpoint.Init()
	return m
}

// endpoint counts one request against its endpoint.
func (m *Metrics) endpoint(name string) {
	m.Requests.Add(1)
	m.perEndpoint.Add(name, 1)
}

// Snapshot renders every counter as a flat ordered map for /metrics.
func (m *Metrics) Snapshot(extra map[string]int64) map[string]int64 {
	out := map[string]int64{
		"requests":      m.Requests.Value(),
		"computed":      m.Computed.Value(),
		"cache_hits":    m.CacheHits.Value(),
		"cache_misses":  m.CacheMisses.Value(),
		"store_hits":    m.StoreHits.Value(),
		"coalesced":     m.Coalesced.Value(),
		"rejected":      m.Rejected.Value(),
		"canceled":      m.Canceled.Value(),
		"client_errors": m.ClientErrors.Value(),
		"server_errors": m.ServerErrors.Value(),
		"batch_faults":  m.BatchFaults.Value(),
		"batch_tests":   m.BatchTests.Value(),
		"sched_items":   m.SchedItems.Value(),
		"sched_pairs":   m.SchedPairs.Value(),
	}
	m.perEndpoint.Do(func(kv expvar.KeyValue) {
		if v, ok := kv.Value.(*expvar.Int); ok {
			out["requests_"+kv.Key] = v.Value()
		}
	})
	for k, v := range extra {
		out[k] = v
	}
	return out
}

// renderMetrics marshals a snapshot (json.Marshal sorts map keys, so
// /metrics output is stable for a given counter state).
func renderMetrics(snap map[string]int64) []byte {
	b, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		// A map[string]int64 cannot fail to marshal; keep the handler
		// total anyway.
		return []byte("{}")
	}
	return append(b, '\n')
}
