package serve

import "errors"

// Admission control. The serving hot path is compute-bound (each
// admitted job already parallelizes over its own atpg.Scheduler pool),
// so the work queue is a bounded admission semaphore: at most
// MaxInFlight computations are admitted, and an arrival beyond that is
// rejected immediately with 429 + Retry-After rather than parked — a
// queue in front of a saturated compute pool only converts backpressure
// into latency. Cache hits and coalesced followers never consume a slot.
var (
	errQueueFull    = errors.New("serve: work queue full")
	errShuttingDown = errors.New("serve: shutting down")
)

// admitQueue is the bounded admission semaphore.
type admitQueue struct {
	slots chan struct{}
}

func newAdmitQueue(depth int) *admitQueue {
	if depth < 1 {
		depth = 1
	}
	return &admitQueue{slots: make(chan struct{}, depth)}
}

// tryAcquire claims a slot without blocking; false means saturated.
func (q *admitQueue) tryAcquire() bool {
	select {
	case q.slots <- struct{}{}:
		return true
	default:
		return false
	}
}

// release returns a slot.
func (q *admitQueue) release() { <-q.slots }

// inFlight reports the currently admitted computations.
func (q *admitQueue) inFlight() int { return len(q.slots) }
