package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// nand2 is the smallest interesting DUT: 4 OBD faults, all testable.
const nand2 = "circuit g\ninput a b\noutput y\nnand g1 y a b\n"

// allPairs enumerates every ordered two-pattern over two inputs — an
// exhaustive (and therefore 100%-coverage) OBD test set for nand2.
func allPairs() []WirePair {
	vecs := []string{"00", "01", "10", "11"}
	var out []WirePair
	for _, v1 := range vecs {
		for _, v2 := range vecs {
			out = append(out, WirePair{V1: v1, V2: v2})
		}
	}
	return out
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// post sends a JSON body and returns status, body bytes and the response.
func post(t *testing.T, url string, req any) (int, []byte, *http.Response) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out, resp
}

// wantErrorCode asserts a typed error body with the given status/code.
func wantErrorCode(t *testing.T, status int, body []byte, wantStatus int, wantCode string) {
	t.Helper()
	if status != wantStatus {
		t.Fatalf("status = %d, want %d (body %s)", status, wantStatus, body)
	}
	var eb ErrorBody
	if err := json.Unmarshal(body, &eb); err != nil {
		t.Fatalf("error body is not JSON: %v (%s)", err, body)
	}
	if eb.Error.Code != wantCode {
		t.Fatalf("error code = %q, want %q (message %q)", eb.Error.Code, wantCode, eb.Error.Message)
	}
	if eb.Error.Message == "" {
		t.Fatal("error message empty")
	}
}

func TestServeGradeOBD(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, body, resp := post(t, ts.URL+"/v1/grade", GradeRequest{Netlist: nand2, Tests: allPairs()})
	if status != 200 {
		t.Fatalf("status %d: %s", status, body)
	}
	if got := resp.Header.Get("Obdserve-Source"); got != "computed" {
		t.Fatalf("source = %q, want computed", got)
	}
	var gr GradeResponse
	if err := json.Unmarshal(body, &gr); err != nil {
		t.Fatal(err)
	}
	if gr.Model != ModelOBD || gr.Faults != 4 || gr.Tests != 16 {
		t.Fatalf("response %+v", gr)
	}
	if gr.Coverage.Detected != 4 || gr.Coverage.Ratio != 1 {
		t.Fatalf("coverage %+v", gr.Coverage)
	}
	if len(gr.Fingerprint) != 64 {
		t.Fatalf("fingerprint %q", gr.Fingerprint)
	}
}

func TestServeGradeTransitionAndStuckAt(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, body, _ := post(t, ts.URL+"/v1/grade", GradeRequest{Netlist: nand2, Model: ModelTransition, Tests: allPairs()})
	if status != 200 {
		t.Fatalf("transition status %d: %s", status, body)
	}
	var gr GradeResponse
	if err := json.Unmarshal(body, &gr); err != nil {
		t.Fatal(err)
	}
	if gr.Model != ModelTransition || gr.Faults == 0 || gr.Coverage.Ratio != 1 {
		t.Fatalf("transition response %+v", gr)
	}

	status, body, _ = post(t, ts.URL+"/v1/grade", GradeRequest{
		Netlist: nand2, Model: ModelStuckAt, Patterns: []string{"00", "01", "10", "11"},
	})
	if status != 200 {
		t.Fatalf("stuckat status %d: %s", status, body)
	}
	if err := json.Unmarshal(body, &gr); err != nil {
		t.Fatal(err)
	}
	if gr.Model != ModelStuckAt || gr.Faults == 0 || gr.Coverage.Ratio != 1 {
		t.Fatalf("stuckat response %+v", gr)
	}
}

func TestServeGradeTypedErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	url := ts.URL + "/v1/grade"

	// Netlist syntax error.
	status, body, _ := post(t, url, GradeRequest{Netlist: "circuit g\nbogus line\n"})
	wantErrorCode(t, status, body, 400, CodeBadNetlist)

	// Parses but fails structural validation (undriven output) — the wire
	// mirror of *atpg.InvalidCircuitError.
	status, body, _ = post(t, url, GradeRequest{Netlist: "circuit g\ninput a\noutput y\n"})
	wantErrorCode(t, status, body, 400, CodeInvalidCircuit)

	// Missing netlist.
	status, body, _ = post(t, url, GradeRequest{})
	wantErrorCode(t, status, body, 400, CodeBadRequest)

	// Unknown model.
	status, body, _ = post(t, url, GradeRequest{Netlist: nand2, Model: "parity"})
	wantErrorCode(t, status, body, 400, CodeBadRequest)

	// Model/field mismatch, both directions.
	status, body, _ = post(t, url, GradeRequest{Netlist: nand2, Model: ModelStuckAt, Tests: allPairs()})
	wantErrorCode(t, status, body, 400, CodeBadRequest)
	status, body, _ = post(t, url, GradeRequest{Netlist: nand2, Patterns: []string{"00"}})
	wantErrorCode(t, status, body, 400, CodeBadRequest)

	// Bad vector width and bad bit character.
	status, body, _ = post(t, url, GradeRequest{Netlist: nand2, Tests: []WirePair{{V1: "0", V2: "11"}}})
	wantErrorCode(t, status, body, 400, CodeBadRequest)
	status, body, _ = post(t, url, GradeRequest{Netlist: nand2, Tests: []WirePair{{V1: "02", V2: "11"}}})
	wantErrorCode(t, status, body, 400, CodeBadRequest)

	// Malformed JSON and unknown fields (strict decoding).
	resp, err := http.Post(url, "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	wantErrorCode(t, resp.StatusCode, raw, 400, CodeBadJSON)
	resp, err = http.Post(url, "application/json", strings.NewReader(`{"netlist": "x", "bogus_field": 1}`))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	wantErrorCode(t, resp.StatusCode, raw, 400, CodeBadJSON)

	// Method contract.
	getResp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ = io.ReadAll(getResp.Body)
	getResp.Body.Close()
	wantErrorCode(t, getResp.StatusCode, raw, 405, CodeMethod)
	if getResp.Header.Get("Allow") != http.MethodPost {
		t.Fatalf("Allow = %q", getResp.Header.Get("Allow"))
	}
}

func TestServePayloadTooLarge(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 256})
	status, body, _ := post(t, ts.URL+"/v1/grade", GradeRequest{Netlist: nand2, Tests: allPairs()})
	wantErrorCode(t, status, body, 413, CodePayloadTooLarge)
}

func TestServeATPG(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, tc := range []struct {
		model string
		prune bool
	}{{ModelOBD, false}, {ModelOBD, true}, {ModelTransition, false}, {ModelStuckAt, false}} {
		status, body, _ := post(t, ts.URL+"/v1/atpg", ATPGRequest{Netlist: nand2, Model: tc.model, Prune: tc.prune})
		if status != 200 {
			t.Fatalf("%s status %d: %s", tc.model, status, body)
		}
		var ar ATPGResponse
		if err := json.Unmarshal(body, &ar); err != nil {
			t.Fatal(err)
		}
		if ar.Faults == 0 || ar.Detected != ar.Faults || ar.Coverage.Ratio != 1 {
			t.Fatalf("%s response %+v", tc.model, ar)
		}
		if tc.model == ModelStuckAt {
			if len(ar.Patterns) == 0 || len(ar.Pairs) != 0 {
				t.Fatalf("stuckat should emit patterns, got %+v", ar)
			}
		} else if len(ar.Pairs) == 0 || len(ar.Patterns) != 0 {
			t.Fatalf("%s should emit pairs, got %+v", tc.model, ar)
		}
	}

	// Prune is an OBD-only knob.
	status, body, _ := post(t, ts.URL+"/v1/atpg", ATPGRequest{Netlist: nand2, Model: ModelStuckAt, Prune: true})
	wantErrorCode(t, status, body, 400, CodeBadRequest)
	status, body, _ = post(t, ts.URL+"/v1/atpg", ATPGRequest{Netlist: nand2, MaxBacktracks: -1})
	wantErrorCode(t, status, body, 400, CodeBadRequest)
}

func TestServeLint(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// Healthy circuit: fingerprint present, no error diagnostics.
	status, body, _ := post(t, ts.URL+"/v1/lint", LintRequest{Netlist: nand2})
	if status != 200 {
		t.Fatalf("status %d: %s", status, body)
	}
	var lr LintResponse
	if err := json.Unmarshal(body, &lr); err != nil {
		t.Fatal(err)
	}
	if lr.Report == nil || len(lr.Fingerprint) != 64 {
		t.Fatalf("response %+v", lr)
	}

	// The exact SAT stanza ("sat" on the wire) is always on for valid
	// circuits: every fault classified, nothing silently dropped.
	if lr.Report.Exact == nil {
		t.Fatal("lint response is missing the sat stanza")
	}
	if got := lr.Report.Exact.Testable + lr.Report.Exact.Untestable + lr.Report.Exact.Aborted; got != lr.Report.Exact.Faults {
		t.Fatalf("sat stanza counts do not decompose: %+v", lr.Report.Exact)
	}
	if len(lr.Report.Exact.Verdicts) != lr.Report.Exact.Faults {
		t.Fatalf("sat stanza has %d verdicts for %d faults", len(lr.Report.Exact.Verdicts), lr.Report.Exact.Faults)
	}

	// SkipFaults also skips the exact pass.
	status, body, _ = post(t, ts.URL+"/v1/lint", LintRequest{Netlist: nand2, SkipFaults: true})
	if status != 200 {
		t.Fatalf("status %d: %s", status, body)
	}
	lr = LintResponse{}
	if err := json.Unmarshal(body, &lr); err != nil {
		t.Fatal(err)
	}
	if lr.Report.Exact != nil {
		t.Fatal("skip_faults response still carries the sat stanza")
	}

	// Lint is the endpoint that must ACCEPT structurally invalid
	// circuits: same netlist that /v1/grade rejects with 400 gets a 200
	// report here, with diagnostics and no fingerprint.
	broken := "circuit g\ninput a\noutput y\n"
	status, body, _ = post(t, ts.URL+"/v1/lint", LintRequest{Netlist: broken})
	if status != 200 {
		t.Fatalf("broken circuit: status %d: %s", status, body)
	}
	lr = LintResponse{}
	if err := json.Unmarshal(body, &lr); err != nil {
		t.Fatal(err)
	}
	if lr.Fingerprint != "" {
		t.Fatalf("invalid circuit must not get a fingerprint, got %q", lr.Fingerprint)
	}
	if lr.Report == nil || lr.Report.Errors() == 0 {
		t.Fatalf("expected error diagnostics, got %+v", lr.Report)
	}

	// Syntax errors are still 400s.
	status, body, _ = post(t, ts.URL+"/v1/lint", LintRequest{Netlist: "not a netlist"})
	wantErrorCode(t, status, body, 400, CodeBadNetlist)
}

func TestServeMission(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := MissionRequest{Netlist: nand2, Seed: 7, Chips: 8, Duration: 1000, FaultRate: 1}
	status, body, _ := post(t, ts.URL+"/v1/mission", req)
	if status != 200 {
		t.Fatalf("status %d: %s", status, body)
	}
	var mr MissionResponse
	if err := json.Unmarshal(body, &mr); err != nil {
		t.Fatal(err)
	}
	if mr.Report == nil || mr.Report.Chips != 8 || mr.Report.Complete != 8 {
		t.Fatalf("report %+v", mr.Report)
	}

	// Config errors surface as 400s, chip cap enforced server-side.
	status, body, _ = post(t, ts.URL+"/v1/mission", MissionRequest{Netlist: nand2, Chips: 0, Duration: 10})
	wantErrorCode(t, status, body, 400, CodeBadRequest)
	status, body, _ = post(t, ts.URL+"/v1/mission", MissionRequest{Netlist: nand2, Chips: 1 << 30, Duration: 10, FaultRate: 1})
	wantErrorCode(t, status, body, 400, CodeBadRequest)
	status, body, _ = post(t, ts.URL+"/v1/mission", MissionRequest{Netlist: nand2, Chips: 2, Duration: 10, FaultRate: 1, Adversity: "bogus=1"})
	wantErrorCode(t, status, body, 400, CodeBadRequest)
}

func TestServeHealthzAndMetrics(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(hb), `"status":"ok"`) {
		t.Fatalf("healthz %d %s", resp.StatusCode, hb)
	}

	// One request, then the counters must reflect it.
	post(t, ts.URL+"/v1/grade", GradeRequest{Netlist: nand2, Tests: allPairs()})
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var snap map[string]int64
	if err := json.Unmarshal(mb, &snap); err != nil {
		t.Fatalf("metrics not JSON: %v (%s)", err, mb)
	}
	for _, k := range []string{"requests", "computed", "cache_misses", "requests_grade", "in_flight", "cache_entries", "sched_pairs"} {
		if _, ok := snap[k]; !ok {
			t.Fatalf("metrics missing %q: %s", k, mb)
		}
	}
	if snap["requests"] != 1 || snap["computed"] != 1 || snap["cache_entries"] != 1 {
		t.Fatalf("unexpected counters: %s", mb)
	}
	if s.Metrics().Requests.Value() != 1 {
		t.Fatal("instance metrics disagree with /metrics")
	}
}

func TestServeQueueFullBackpressure(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInFlight: 1})
	// Occupy the only admission slot directly — deterministic saturation
	// without timing games.
	if !s.queue.tryAcquire() {
		t.Fatal("fresh queue should have a slot")
	}
	defer s.queue.release()

	status, body, resp := post(t, ts.URL+"/v1/grade", GradeRequest{Netlist: nand2, Tests: allPairs()})
	wantErrorCode(t, status, body, 429, CodeQueueFull)
	if resp.Header.Get("Retry-After") != "1" {
		t.Fatalf("Retry-After = %q", resp.Header.Get("Retry-After"))
	}
	if s.Metrics().Rejected.Value() != 1 {
		t.Fatalf("rejected = %d", s.Metrics().Rejected.Value())
	}

	// Cache hits bypass admission: warm the cache with a free slot, then
	// saturate again and observe the hit still served.
	s.queue.release()
	if st, b, _ := post(t, ts.URL+"/v1/grade", GradeRequest{Netlist: nand2, Tests: allPairs()}); st != 200 {
		t.Fatalf("warming failed: %d %s", st, b)
	}
	if !s.queue.tryAcquire() {
		t.Fatal("slot should be free again")
	}
	status, _, resp = post(t, ts.URL+"/v1/grade", GradeRequest{Netlist: nand2, Tests: allPairs()})
	if status != 200 || resp.Header.Get("Obdserve-Source") != "cache" {
		t.Fatalf("saturated cache hit: %d source %q", status, resp.Header.Get("Obdserve-Source"))
	}
}

func TestServeShuttingDown(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	s.Close()
	status, body, _ := post(t, ts.URL+"/v1/grade", GradeRequest{Netlist: nand2, Tests: allPairs()})
	wantErrorCode(t, status, body, 503, CodeShuttingDown)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Fatalf("healthz after Close = %d", resp.StatusCode)
	}
}

// TestServeCanonicalizationSharesCache checks the digest normalization:
// a lowercase 'x' don't-care and an uppercase 'X' are the same workload
// and must share one cache entry.
func TestServeCanonicalizationSharesCache(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	r1 := GradeRequest{Netlist: nand2, Tests: []WirePair{{V1: "0X", V2: "11"}}}
	r2 := GradeRequest{Netlist: nand2, Tests: []WirePair{{V1: "0x", V2: "11"}}}
	st1, b1, _ := post(t, ts.URL+"/v1/grade", r1)
	st2, b2, resp2 := post(t, ts.URL+"/v1/grade", r2)
	if st1 != 200 || st2 != 200 {
		t.Fatalf("status %d %d", st1, st2)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("bodies differ:\n%s\n%s", b1, b2)
	}
	if resp2.Header.Get("Obdserve-Source") != "cache" {
		t.Fatalf("second spelling should hit the cache, got %q", resp2.Header.Get("Obdserve-Source"))
	}
	if s.Metrics().Computed.Value() != 1 {
		t.Fatalf("computed = %d, want 1", s.Metrics().Computed.Value())
	}

	// Renamed nets share a fingerprint but are a DIFFERENT workload
	// (fault names derive from gate names) — they must not collide.
	renamed := "circuit g2\ninput a b\noutput out\nnand u1 out a b\n"
	st3, b3, _ := post(t, ts.URL+"/v1/grade", GradeRequest{Netlist: renamed, Tests: []WirePair{{V1: "0X", V2: "11"}}})
	if st3 != 200 {
		t.Fatalf("status %d", st3)
	}
	var g1, g3 GradeResponse
	if err := json.Unmarshal(b1, &g1); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b3, &g3); err != nil {
		t.Fatal(err)
	}
	if g1.Fingerprint != g3.Fingerprint {
		t.Fatal("isomorphic circuits should share a fingerprint")
	}
	if bytes.Equal(b1, b3) {
		t.Fatal("renamed circuit must not be served from the other's cache entry")
	}
}

// TestServeLRUEviction exercises the bounded cache: capacity 2, three
// distinct workloads, the oldest falls out.
func TestServeLRUEviction(t *testing.T) {
	s, ts := newTestServer(t, Config{CacheEntries: 2})
	reqFor := func(i int) GradeRequest {
		return GradeRequest{Netlist: nand2, Tests: []WirePair{{V1: fmt.Sprintf("%02b", i), V2: "11"}}}
	}
	for i := 0; i < 3; i++ {
		if st, b, _ := post(t, ts.URL+"/v1/grade", reqFor(i)); st != 200 {
			t.Fatalf("req %d: %d %s", i, st, b)
		}
	}
	if entries, _ := s.cache.stats(); entries != 2 {
		t.Fatalf("cache entries = %d, want 2", entries)
	}
	// Workload 0 was evicted: re-requesting recomputes.
	_, _, resp := post(t, ts.URL+"/v1/grade", reqFor(0))
	if got := resp.Header.Get("Obdserve-Source"); got != "computed" {
		t.Fatalf("evicted entry source = %q, want computed", got)
	}
	// Workload 2 is still warm.
	_, _, resp = post(t, ts.URL+"/v1/grade", reqFor(2))
	if got := resp.Header.Get("Obdserve-Source"); got != "cache" {
		t.Fatalf("warm entry source = %q, want cache", got)
	}
}
