package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"path/filepath"
	"runtime"
	"sync/atomic"
	"time"

	"gobd/internal/atpg"
	"gobd/internal/jobs"
	"gobd/internal/store"
)

// Config tunes a Server. The zero value is usable: every field has a
// production default applied by New.
type Config struct {
	// Workers sizes the per-request atpg.Scheduler pool (0 = GOMAXPROCS).
	// By the scheduler's determinism contract this changes wall-clock
	// only, never response bytes.
	Workers int
	// MaxInFlight bounds admitted concurrent computations; arrivals
	// beyond it get 429 + Retry-After (0 = 2×GOMAXPROCS). Cache hits and
	// coalesced followers never consume a slot.
	MaxInFlight int
	// CacheEntries bounds the response LRU (0 = 256; negative disables).
	CacheEntries int
	// RequestTimeout is the per-request compute deadline propagated into
	// the scheduler's Ctx entry points (0 = 60s).
	RequestTimeout time.Duration
	// MaxBodyBytes bounds request bodies (0 = 8 MiB).
	MaxBodyBytes int64
	// MissionMaxChips bounds /v1/mission population size (0 = 100000).
	MissionMaxChips int
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
	// DataDir, when non-empty, enables the durable layer rooted there: a
	// crash-safe artifact store that doubles as a cross-restart response
	// cache, and the /v1/jobs runtime for checkpointed background jobs.
	// Empty keeps the server fully in-memory (the pre-durability mode).
	DataDir string
	// SegmentChips/SegmentFaults tune job checkpoint granularity
	// (0 = the jobs package defaults). Checkpoint placement never
	// changes job results — only how much work a crash can lose.
	SegmentChips  int
	SegmentFaults int
}

// withDefaults resolves zero fields to production defaults.
func (c Config) withDefaults() Config {
	if c.MaxInFlight == 0 {
		c.MaxInFlight = 2 * runtime.GOMAXPROCS(0)
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 256
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 60 * time.Second
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.MissionMaxChips == 0 {
		c.MissionMaxChips = 100_000
	}
	return c
}

// Server is the HTTP serving layer over the deterministic compute core.
// Create with New, expose via Handler, and Close when force-stopping
// (graceful drains go through http.Server.Shutdown, which lets admitted
// computations finish; Close additionally cancels them).
type Server struct {
	cfg     Config
	metrics *Metrics
	cache   *lruCache
	flights *flightGroup
	queue   *admitQueue
	mux     *http.ServeMux

	stopCtx  context.Context // cancelled by Close: force-stops compute
	stopStop context.CancelFunc

	// Durable layer (nil when Config.DataDir is empty).
	store *store.Store
	jobs  *jobs.Manager
	// draining flips at BeginDrain: /healthz reports it and job
	// submissions are refused while in-flight work checkpoints.
	draining atomic.Bool

	// computeGate, when non-nil (tests only), parks every admitted
	// computation until the channel is closed — the hook that lets the
	// coalescing and disconnect tests order events deterministically.
	computeGate <-chan struct{}
}

// New builds a Server with cfg (zero fields defaulted). It fails only
// when Config.DataDir is set and the durable layer cannot open there.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		metrics: newMetrics(),
		cache:   newLRUCache(cfg.CacheEntries),
		flights: newFlightGroup(),
		queue:   newAdmitQueue(cfg.MaxInFlight),
		mux:     http.NewServeMux(),
	}
	s.stopCtx, s.stopStop = context.WithCancel(context.Background()) //obdcheck:allow ctxflow — server-lifetime root context, cancelled by Close
	if cfg.DataDir != "" {
		st, err := store.Open(filepath.Join(cfg.DataDir, "store"), nil)
		if err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
		//obdcheck:allow paniccontract — the chain bottoms out in the obd stage tables, which cover every defined Stage by construction (the jobs runner validates every spec before it reaches mission.New)
		mgr, err := jobs.Open(jobs.Config{
			Store:         st,
			JournalPath:   filepath.Join(cfg.DataDir, "jobs.journal"),
			Workers:       cfg.Workers,
			SegmentChips:  cfg.SegmentChips,
			SegmentFaults: cfg.SegmentFaults,
		})
		if err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
		s.store, s.jobs = st, mgr
	}
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/v1/grade", s.handleGrade)
	s.mux.HandleFunc("/v1/atpg", s.handleATPG)
	s.mux.HandleFunc("/v1/lint", s.handleLint)
	s.mux.HandleFunc("/v1/mission", s.handleMission)
	if s.jobs != nil {
		s.mux.HandleFunc("POST /v1/jobs", s.handleJobSubmit)
		s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
		s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleJobResult)
		s.mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleJobCancel)
	}
	if cfg.EnablePprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s, nil
}

// Handler returns the route tree.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics exposes the counters (tests and cmd/obdserve's expvar hook).
func (s *Server) Metrics() *Metrics { return s.metrics }

// BeginDrain marks the server draining: /healthz flips to "draining"
// (503, so load balancers stop routing here) and job submissions are
// refused. Call it before http.Server.Shutdown, then DrainJobs.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// DrainJobs parks the job runtime at its next checkpoint boundary,
// journaling in-flight work back to queued so a restarted process
// resumes it losslessly. No-op without a durable layer.
func (s *Server) DrainJobs(ctx context.Context) error {
	s.BeginDrain()
	if s.jobs == nil {
		return nil
	}
	if err := s.jobs.Drain(ctx); err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	return nil
}

// Close force-stops in-flight computations and the job runtime. Call
// after a graceful http.Server.Shutdown deadline expires (or on the
// second SIGTERM).
func (s *Server) Close() {
	s.stopStop()
	if s.jobs != nil {
		s.jobs.Close() //nolint:errcheck // force-stop: journal is already fsynced per append
	}
}

// Snapshot folds the live gauges into the counter snapshot.
func (s *Server) Snapshot() map[string]int64 {
	entries, bytes := s.cache.stats()
	extra := map[string]int64{
		"in_flight":     int64(s.queue.inFlight()),
		"cache_entries": int64(entries),
		"cache_bytes":   bytes,
	}
	if s.store != nil {
		objects, storeBytes, quarantined := s.store.Stats()
		extra["store_objects"] = int64(objects)
		extra["store_bytes"] = storeBytes
		extra["store_quarantined"] = quarantined
	}
	if s.jobs != nil {
		for k, v := range s.jobs.Stats() {
			extra[k] = v
		}
	}
	return s.metrics.Snapshot(extra)
}

// job is one cacheable unit of work: a digest identifying it and the
// compute closure producing its response value.
type job struct {
	digest  string
	faults  int // batch telemetry: targeted faults (0 when unknown up front)
	tests   int // batch telemetry: patterns/pairs in the request
	compute func(ctx context.Context, sched *atpg.Scheduler) (any, error)
}

// serveJob is the shared pipeline: cache lookup, single-flight
// coalescing, bounded admission, deadline propagation, response write.
func (s *Server) serveJob(w http.ResponseWriter, r *http.Request, build func() (*job, *apiError)) {
	j, aerr := build()
	if aerr != nil {
		s.writeError(w, aerr)
		return
	}
	s.metrics.BatchFaults.Add(int64(j.faults))
	s.metrics.BatchTests.Add(int64(j.tests))
	if body, ok := s.cache.get(j.digest); ok {
		s.metrics.CacheHits.Add(1)
		s.writeBody(w, body, "cache")
		return
	}
	s.metrics.CacheMisses.Add(1)
	if s.store != nil {
		// Durable second-level cache: digest-verified artifacts survive
		// restarts. A corrupt object is quarantined by Get and falls
		// through to recompute — bad bytes are never served.
		if body, err := s.store.Get(j.digest); err == nil {
			s.metrics.StoreHits.Add(1)
			s.cache.put(j.digest, body)
			s.writeBody(w, body, "store")
			return
		}
	}
	for {
		body, leader, err := s.flights.do(r.Context(), j.digest, func() ([]byte, error) {
			return s.runCompute(r.Context(), j)
		})
		switch {
		case err == nil:
			if leader {
				s.metrics.Computed.Add(1)
				s.writeBody(w, body, "computed")
			} else {
				s.metrics.Coalesced.Add(1)
				s.writeBody(w, body, "coalesced")
			}
			return
		case !leader && errors.Is(err, context.Canceled) && r.Context().Err() == nil && s.stopCtx.Err() == nil:
			// The flight died with its leader's client; this follower is
			// still live, so it retries (and typically becomes leader).
			continue
		case r.Context().Err() != nil:
			// Our own client is gone; nothing can be written. Count it.
			s.metrics.Canceled.Add(1)
			return
		default:
			s.writeError(w, coreError(err))
			return
		}
	}
}

// runCompute runs a job under admission control and the request
// deadline, marshals the response value, and caches the bytes. Failed
// or cancelled computations are never cached.
func (s *Server) runCompute(reqCtx context.Context, j *job) ([]byte, error) {
	if s.stopCtx.Err() != nil {
		return nil, errShuttingDown
	}
	if !s.queue.tryAcquire() {
		return nil, errQueueFull
	}
	defer s.queue.release()
	ctx, cancel := context.WithTimeout(reqCtx, s.cfg.RequestTimeout)
	defer cancel()
	stop := context.AfterFunc(s.stopCtx, cancel)
	defer stop()
	if s.computeGate != nil {
		select {
		case <-s.computeGate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}

	sched := atpg.NewScheduler(s.cfg.Workers)
	sched.CollectStats = true
	v, err := j.compute(ctx, sched)
	for _, ws := range sched.Stats() {
		s.metrics.SchedItems.Add(ws.Items)
		s.metrics.SchedPairs.Add(ws.Pairs)
	}
	if err == nil && ctx.Err() != nil {
		// The scheduler checks cancellation at chunk boundaries, so a
		// small workload can finish after its client died. Hold the
		// contract unconditionally: a cancelled request's run is
		// discarded, never cached, never served.
		err = ctx.Err()
	}
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) && reqCtx.Err() == nil && s.stopCtx.Err() == nil {
			return nil, &apiError{status: 503, code: CodeDeadline, msg: fmt.Sprintf("request exceeded the %s compute deadline", s.cfg.RequestTimeout)}
		}
		if s.stopCtx.Err() != nil {
			return nil, errShuttingDown
		}
		return nil, err
	}
	body, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	body = append(body, '\n')
	s.cache.put(j.digest, body)
	if s.store != nil {
		// Write-through to the durable cache; a failed write only costs
		// a future recompute, so it is best-effort by design.
		s.store.Put(j.digest, body) //nolint:errcheck // durable cache write-through is best-effort
	}
	return body, nil
}

// writeBody writes a 200 JSON response. The Obdserve-Source header names
// how the body was produced (computed, cache, coalesced) — operational
// only; the body bytes are identical whatever the source.
func (s *Server) writeBody(w http.ResponseWriter, body []byte, source string) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Obdserve-Source", source)
	w.WriteHeader(http.StatusOK)
	w.Write(body) //nolint:errcheck // client writes are best-effort
}

// writeError writes a typed error body.
func (s *Server) writeError(w http.ResponseWriter, e *apiError) {
	if e.status >= 500 {
		s.metrics.ServerErrors.Add(1)
	} else {
		s.metrics.ClientErrors.Add(1)
	}
	if e.status == http.StatusTooManyRequests {
		s.metrics.Rejected.Add(1)
		w.Header().Set("Retry-After", "1")
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(e.status)
	body, err := json.Marshal(ErrorBody{Error: WireError{Code: e.code, Message: e.msg}})
	if err != nil {
		return
	}
	w.Write(append(body, '\n')) //nolint:errcheck // client writes are best-effort
}

// writeJSON writes a JSON value with the given status — job snapshots
// and other non-cacheable bodies that bypass the artifact pipeline.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		s.writeError(w, &apiError{status: http.StatusInternalServerError, code: CodeInternal, msg: err.Error()})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(body, '\n')) //nolint:errcheck // client writes are best-effort
}

// decodeJSON strictly decodes a request body into dst.
func (s *Server) decodeJSON(w http.ResponseWriter, r *http.Request, dst any) *apiError {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return &apiError{status: http.StatusRequestEntityTooLarge, code: CodePayloadTooLarge,
				msg: fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit)}
		}
		return badRequest(CodeBadJSON, "%v", err)
	}
	if dec.More() {
		return badRequest(CodeBadJSON, "trailing data after JSON body")
	}
	return nil
}

// requirePost enforces the /v1 method contract and counts the request.
func (s *Server) requirePost(w http.ResponseWriter, r *http.Request, endpoint string) bool {
	s.metrics.endpoint(endpoint)
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.writeError(w, &apiError{status: http.StatusMethodNotAllowed, code: CodeMethod,
			msg: endpoint + " accepts POST only"})
		return false
	}
	return true
}

// handleHealthz reports liveness (GET).
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	code := http.StatusOK
	if s.draining.Load() {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	if s.stopCtx.Err() != nil {
		status = "stopping"
		code = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	fmt.Fprintf(w, "{\"status\":%q,\"workers\":%d}\n", status, atpg.NewScheduler(s.cfg.Workers).WorkerCount())
}

// handleMetrics renders the expvar counters plus live gauges (GET).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(renderMetrics(s.Snapshot())) //nolint:errcheck // client writes are best-effort
}
