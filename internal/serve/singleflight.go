package serve

import (
	"context"
	"sync"
)

// flightGroup coalesces concurrent identical requests: while a digest's
// computation is in flight, followers with the same digest wait for the
// leader's result instead of recomputing. This is a small, context-aware
// single-flight (the stdlib has none and the module is dependency-free).
//
// Cancellation semantics: the leader computes under its own request
// context. If the leader's client disconnects, its flight fails with a
// context error; a follower whose own context is still live then retries
// as the new leader (see server.compute), so one impatient client cannot
// starve the patient ones.
type flightGroup struct {
	mu      sync.Mutex
	flights map[string]*flight
}

type flight struct {
	done    chan struct{}
	waiters int // followers currently parked on done (guarded by group mu)
	body    []byte
	err     error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{flights: make(map[string]*flight)}
}

// do runs fn once per digest among concurrent callers. It returns the
// result body, whether this caller led the computation, and an error.
// A waiting follower returns early with ctx's error when its own
// context dies first.
func (g *flightGroup) do(ctx context.Context, key string, fn func() ([]byte, error)) (body []byte, leader bool, err error) {
	g.mu.Lock()
	if f, ok := g.flights[key]; ok {
		f.waiters++
		g.mu.Unlock()
		select {
		case <-f.done:
			return f.body, false, f.err
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	g.flights[key] = f
	g.mu.Unlock()

	f.body, f.err = fn()
	g.mu.Lock()
	delete(g.flights, key)
	g.mu.Unlock()
	close(f.done)
	return f.body, true, f.err
}

// parked reports how many followers are waiting across all live flights.
// Tests use it to make coalescing assertions deterministic instead of
// timing-dependent.
func (g *flightGroup) parked() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	n := 0
	for _, f := range g.flights {
		n += f.waiters
	}
	return n
}
