// Package serve is the HTTP/JSON serving layer over the repository's
// deterministic compute core: OBD/transition/stuck-at grading, ATPG,
// static netlist analysis and mission campaigns, exposed as versioned
// /v1/* endpoints with a result cache, single-flight request coalescing
// and bounded-admission backpressure.
//
// The core contract extends the scheduler's determinism to the wire:
// the same request body yields byte-identical JSON regardless of the
// server's worker count, cache state, or concurrent load. Everything
// wall-clock- or load-dependent (worker stats, cache hit counters)
// flows to /metrics, never into a /v1 response. See DESIGN.md §10.
package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"strings"

	"gobd/internal/atpg"
	"gobd/internal/logic"
	"gobd/internal/mission"
	"gobd/internal/netcheck"
)

// Fault-model names accepted on the wire.
const (
	ModelOBD        = "obd"
	ModelTransition = "transition"
	ModelStuckAt    = "stuckat"
)

// WirePair is a two-pattern test on the wire: bit strings over the
// circuit's declared input order ('0', '1', 'X').
type WirePair struct {
	V1 string `json:"v1"`
	V2 string `json:"v2"`
}

// GradeRequest asks for fault coverage of a pattern set on a netlist.
type GradeRequest struct {
	// Netlist is the circuit in the internal/logic text format.
	Netlist string `json:"netlist"`
	// Model selects the fault universe: obd (default), transition, stuckat.
	Model string `json:"model,omitempty"`
	// Tests are the vector pairs to grade (obd and transition models).
	Tests []WirePair `json:"tests,omitempty"`
	// Patterns are the single vectors to grade (stuckat model).
	Patterns []string `json:"patterns,omitempty"`
}

// WireCoverage is a grading outcome on the wire.
type WireCoverage struct {
	Total      int      `json:"total"`
	Detected   int      `json:"detected"`
	Ratio      float64  `json:"ratio"`
	Undetected []string `json:"undetected,omitempty"`
}

// toWire converts an atpg.Coverage.
func toWire(c atpg.Coverage) WireCoverage {
	return WireCoverage{Total: c.Total, Detected: c.Detected, Ratio: c.Ratio(), Undetected: c.Undetected}
}

// GradeResponse is the /v1/grade reply. Sequential netlists are graded
// through their combinational core (vectors span the core's inputs:
// originals, then state bits in chain order) and report FFs.
type GradeResponse struct {
	Circuit     string       `json:"circuit"`
	Fingerprint string       `json:"fingerprint"`
	Model       string       `json:"model"`
	FFs         int          `json:"ffs,omitempty"` // flip-flop count (sequential requests)
	Faults      int          `json:"faults"`
	Tests       int          `json:"tests"`
	Coverage    WireCoverage `json:"coverage"`
}

// ATPGRequest asks for test generation on a netlist.
type ATPGRequest struct {
	Netlist string `json:"netlist"`
	// Model selects the generator: obd (default), transition, stuckat.
	Model string `json:"model,omitempty"`
	// Style selects the scan discipline for sequential (DFF-bearing)
	// netlists: enhanced, los, loc (obd model only). A sequential netlist
	// with no style defaults to enhanced; combinational requests leave it
	// empty, keeping their cache digests unchanged.
	Style string `json:"style,omitempty"`
	// Prune runs netcheck's static untestability prover before PODEM
	// (combinational OBD model only; see atpg.Options.Prune).
	Prune bool `json:"prune,omitempty"`
	// MaxBacktracks overrides the per-fault PODEM backtrack limit (0 =
	// the package default; combinational generators only).
	MaxBacktracks int `json:"max_backtracks,omitempty"`
}

// ATPGResponse is the /v1/atpg reply. For sequential requests the pairs
// are patterns of the combinational core (original inputs in declaration
// order, then the state bits in chain order) and FFs/Style are set.
type ATPGResponse struct {
	Circuit     string       `json:"circuit"`
	Fingerprint string       `json:"fingerprint"`
	Model       string       `json:"model"`
	Style       string       `json:"style,omitempty"` // scan style (sequential requests)
	FFs         int          `json:"ffs,omitempty"`   // flip-flop count (sequential requests)
	Faults      int          `json:"faults"`
	Pairs       []WirePair   `json:"pairs,omitempty"`    // obd, transition
	Patterns    []string     `json:"patterns,omitempty"` // stuckat
	Detected    int          `json:"detected"`
	Untestable  int          `json:"untestable"`
	Aborted     int          `json:"aborted"`
	Errored     int          `json:"errored"`
	Coverage    WireCoverage `json:"coverage"`
}

// LintRequest asks for static netlist analysis.
type LintRequest struct {
	Netlist string `json:"netlist"`
	// SkipFaults disables the OBD untestability and hard-fault passes.
	SkipFaults bool `json:"skip_faults,omitempty"`
	// TopHard caps the hard-fault ranking length (0 = all).
	TopHard int `json:"top_hard,omitempty"`
}

// LintResponse is the /v1/lint reply: the full netcheck report plus the
// structural fingerprint (empty when the netlist does not validate —
// lint is exactly the endpoint that must accept broken circuits).
type LintResponse struct {
	Fingerprint string           `json:"fingerprint,omitempty"`
	Report      *netcheck.Report `json:"report"`
}

// MissionRequest runs a seeded concurrent-test mission campaign.
type MissionRequest struct {
	Netlist string `json:"netlist"`
	Seed    uint64 `json:"seed"`
	Chips   int    `json:"chips"`
	// Duration and Period are simulated seconds (0 period derives the
	// largest safe period from the observability window).
	Duration  float64 `json:"duration"`
	Period    float64 `json:"period,omitempty"`
	FaultRate float64 `json:"fault_rate"`
	// BISTCycles is the LFSR stream length per test interval (0 = 64).
	BISTCycles int `json:"bist_cycles,omitempty"`
	// Adversity is a profile spec: "off", "light", "heavy" or key=value list.
	Adversity           string `json:"adversity,omitempty"`
	IncludeUndetectable bool   `json:"include_undetectable,omitempty"`
	PerChip             bool   `json:"per_chip,omitempty"`
}

// MissionResponse is the /v1/mission reply.
type MissionResponse struct {
	Circuit     string          `json:"circuit"`
	Fingerprint string          `json:"fingerprint"`
	Report      *mission.Report `json:"report"`
}

// Wire error codes (the machine-matchable face of the core's typed
// errors; see DESIGN.md §10).
const (
	CodeBadJSON         = "bad-json"
	CodeBadNetlist      = "bad-netlist"
	CodeInvalidCircuit  = "invalid-circuit"
	CodeSequential      = "sequential-circuit"
	CodeInputLimit      = "input-limit"
	CodeBadRequest      = "bad-request"
	CodeMethod          = "method-not-allowed"
	CodeQueueFull       = "queue-full"
	CodeDeadline        = "deadline-exceeded"
	CodeShuttingDown    = "shutting-down"
	CodeInternal        = "internal"
	CodePayloadTooLarge = "payload-too-large"
)

// WireError is the typed error body every non-2xx /v1 response carries.
type WireError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// ErrorBody wraps a WireError the way clients receive it.
type ErrorBody struct {
	Error WireError `json:"error"`
}

// apiError carries an HTTP status and wire code through the handler
// pipeline.
type apiError struct {
	status int
	code   string
	msg    string
}

// Error implements error.
func (e *apiError) Error() string { return fmt.Sprintf("%s: %s", e.code, e.msg) }

func badRequest(code, format string, args ...any) *apiError {
	return &apiError{status: 400, code: code, msg: fmt.Sprintf(format, args...)}
}

// coreError maps a compute-core error onto a typed wire error: the
// scheduler's *InvalidCircuitError, *SequentialCircuitError and
// *InputLimitError become 400s mirroring their messages, context
// deadline becomes 503, anything else a 500.
func coreError(err error) *apiError {
	var ice *atpg.InvalidCircuitError
	if errors.As(err, &ice) {
		return &apiError{status: 400, code: CodeInvalidCircuit, msg: ice.Error()}
	}
	var sce *atpg.SequentialCircuitError
	if errors.As(err, &sce) {
		return &apiError{status: 400, code: CodeSequential, msg: sce.Error()}
	}
	var ile *atpg.InputLimitError
	if errors.As(err, &ile) {
		return &apiError{status: 400, code: CodeInputLimit, msg: ile.Error()}
	}
	if errors.Is(err, errShuttingDown) {
		return &apiError{status: 503, code: CodeShuttingDown, msg: "server is draining"}
	}
	if errors.Is(err, errQueueFull) {
		return &apiError{status: 429, code: CodeQueueFull, msg: "work queue full; retry later"}
	}
	var ae *apiError
	if errors.As(err, &ae) {
		return ae
	}
	return &apiError{status: 500, code: CodeInternal, msg: err.Error()}
}

// parseNetlist reads the wire netlist, reporting syntax failures as
// bad-netlist and structural validation failures as invalid-circuit —
// the wire mirror of *logic parse errors and *InvalidCircuitError.
// Endpoints that tolerate invalid circuits (lint) pass validate=false
// and get the lenient parse: diagnosing broken circuits is their job.
func parseNetlist(src string, validate bool) (*logic.Circuit, *apiError) {
	if strings.TrimSpace(src) == "" {
		return nil, badRequest(CodeBadRequest, "netlist is required")
	}
	c, err := logic.ParseLenientString(src)
	if err != nil {
		return nil, badRequest(CodeBadNetlist, "%v", err)
	}
	if validate {
		if err := c.Validate(); err != nil {
			return nil, badRequest(CodeInvalidCircuit, "%v", (&atpg.InvalidCircuitError{Err: err}).Error())
		}
	}
	return c, nil
}

// parsePattern reads a bit string over the circuit's input order.
func parsePattern(s string, c *logic.Circuit) (atpg.Pattern, error) {
	if len(s) != len(c.Inputs) {
		return nil, fmt.Errorf("vector %q has %d bits, circuit has %d inputs", s, len(s), len(c.Inputs))
	}
	p := make(atpg.Pattern, len(s))
	for i, ch := range s {
		switch ch {
		case '0':
			p[c.Inputs[i]] = logic.Zero
		case '1':
			p[c.Inputs[i]] = logic.One
		case 'X', 'x':
			p[c.Inputs[i]] = logic.X
		default:
			return nil, fmt.Errorf("bad bit %q in vector %q", string(ch), s)
		}
	}
	return p, nil
}

// parsePairs converts wire pairs to TwoPatterns.
func parsePairs(ps []WirePair, c *logic.Circuit) ([]atpg.TwoPattern, *apiError) {
	out := make([]atpg.TwoPattern, 0, len(ps))
	for i, wp := range ps {
		v1, err := parsePattern(wp.V1, c)
		if err != nil {
			return nil, badRequest(CodeBadRequest, "tests[%d].v1: %v", i, err)
		}
		v2, err := parsePattern(wp.V2, c)
		if err != nil {
			return nil, badRequest(CodeBadRequest, "tests[%d].v2: %v", i, err)
		}
		out = append(out, atpg.TwoPattern{V1: v1, V2: v2})
	}
	return out, nil
}

// digest is the cache/single-flight key of a request: the endpoint, the
// structural fingerprint (the primary shard key), and a hash over the
// CANONICALIZED request — the parsed netlist re-rendered by logic.Format
// (so whitespace and comment variants coalesce) plus the remaining
// request fields in canonical JSON. The canonical netlist keeps concrete
// gate and net names because responses are name-dependent (fault names
// derive from gate names); two isomorphic-but-renamed circuits share a
// fingerprint yet correctly occupy distinct cache entries.
func digest(endpoint string, fp logic.Fingerprint, canonicalNetlist string, params any) (string, error) {
	pj, err := json.Marshal(params)
	if err != nil {
		return "", err
	}
	h := sha256.New()
	h.Write([]byte(endpoint))
	h.Write([]byte{0})
	h.Write(fp[:])
	h.Write([]byte{0})
	nl := sha256.Sum256([]byte(canonicalNetlist))
	h.Write(nl[:])
	h.Write([]byte{0})
	h.Write(pj)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// fingerprintOf computes the structural fingerprint, returning the zero
// fingerprint for circuits that fail validation (lint-only path).
func fingerprintOf(c *logic.Circuit) logic.Fingerprint {
	fp, err := c.Fingerprint()
	if err != nil {
		return logic.Fingerprint{}
	}
	return fp
}

// Parse spec of mission adversity up-front so bad specs are 400s.
func parseAdversity(spec string) (mission.Adversity, *apiError) {
	if spec == "" {
		spec = "off"
	}
	adv, err := mission.ParseAdversity(spec)
	if err != nil {
		return mission.Adversity{}, badRequest(CodeBadRequest, "%v", err)
	}
	return adv, nil
}
