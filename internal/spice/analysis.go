package spice

import (
	"errors"
	"fmt"
	"math"

	"gobd/internal/numeric"
)

// Options configures the solver. The zero value is not valid; use
// DefaultOptions.
type Options struct {
	RelTol  float64 // relative convergence tolerance on unknowns
	VnTol   float64 // absolute voltage tolerance (V)
	AbsTol  float64 // absolute current tolerance on branch unknowns (A)
	MaxIter int     // Newton iteration limit per solve
	Gmin    float64 // final minimum junction conductance (S)

	// Adaptive enables delta-V transient step control: the step shrinks
	// so no node moves more than DVMax per step and grows (up to the
	// nominal dt) through quiet regions. Edges stay densely sampled —
	// which is what the 50%-crossing measurements need — while flat tails
	// cost almost nothing.
	Adaptive bool
	DVMax    float64 // max per-node voltage change per step (V); 0 = 0.1
}

// DefaultOptions returns SPICE-like solver settings.
func DefaultOptions() *Options {
	return &Options{
		RelTol:  1e-3,
		VnTol:   1e-6,
		AbsTol:  1e-12,
		MaxIter: 150,
		Gmin:    1e-12,
		DVMax:   0.1,
	}
}

// ErrNoConvergence is returned when Newton iteration fails even after the
// gmin and source-stepping continuation strategies.
var ErrNoConvergence = errors.New("spice: Newton iteration did not converge")

// Solution is a committed solver result for one bias/timepoint.
type Solution struct {
	ckt *Circuit
	x   []float64
}

// V returns the voltage of the named node.
func (s *Solution) V(node string) float64 {
	id, ok := s.ckt.nodeIndex[node]
	if !ok {
		panic(fmt.Sprintf("spice: unknown node %q", node))
	}
	return nodeV(s.x, id)
}

// VID returns the voltage of a node by ID.
func (s *Solution) VID(n NodeID) float64 { return nodeV(s.x, n) }

// Raw returns the underlying unknown vector (node voltages then branch
// currents). Callers must not modify it.
func (s *Solution) Raw() []float64 { return s.x }

// SourceCurrent returns the branch current of a voltage source (positive
// flowing from the + terminal through the source to the − terminal).
func (s *Solution) SourceCurrent(v *VSource) float64 {
	return s.x[len(s.ckt.nodeNames)-1+v.branch]
}

// solveContext bundles the per-solve mutable state.
type solveContext struct {
	ckt *Circuit
	opt *Options
	m   *numeric.Matrix
	rhs []float64
}

func newSolveContext(c *Circuit, opt *Options) *solveContext {
	n := c.matrixSize()
	return &solveContext{ckt: c, opt: opt, m: numeric.NewMatrix(n), rhs: make([]float64, n)}
}

// newton runs Newton–Raphson from the starting vector x (modified in
// place), returning nil on convergence.
func (sc *solveContext) newton(x []float64, mode analysisMode, t, dt, gmin, gshunt, scale float64) error {
	c := sc.ckt
	nNodes := len(c.nodeNames) - 1
	st := &Stamper{ckt: c, m: sc.m, rhs: sc.rhs, mode: mode, time: t, dt: dt, gmin: gmin, gshunt: gshunt, scale: scale}
	for iter := 0; iter < sc.opt.MaxIter; iter++ {
		sc.m.Zero()
		for i := range sc.rhs {
			sc.rhs[i] = 0
		}
		st.x = x
		st.limitHit = false
		for _, d := range c.devices {
			d.Stamp(st)
		}
		// Node-to-ground shunt: keeps the matrix nonsingular for floating
		// nodes and is the gmin-stepping continuation handle.
		if gshunt > 0 {
			for i := 0; i < nNodes; i++ {
				sc.m.Add(i, i, gshunt)
			}
		}
		lu, err := numeric.Factor(sc.m)
		if err != nil {
			return fmt.Errorf("spice: MNA factorization failed: %w", err)
		}
		xNew := lu.Solve(sc.rhs)
		converged := iter > 0 && !st.limitHit
		for i := 0; i < nNodes; i++ {
			tol := sc.opt.VnTol + sc.opt.RelTol*math.Max(math.Abs(xNew[i]), math.Abs(x[i]))
			if math.Abs(xNew[i]-x[i]) > tol {
				converged = false
				break
			}
		}
		if converged {
			for i := nNodes; i < len(x); i++ {
				tol := sc.opt.AbsTol + sc.opt.RelTol*math.Max(math.Abs(xNew[i]), math.Abs(x[i]))
				if math.Abs(xNew[i]-x[i]) > tol {
					converged = false
					break
				}
			}
		}
		copy(x, xNew)
		for i := range x {
			if math.IsNaN(x[i]) || math.IsInf(x[i], 0) {
				return fmt.Errorf("%w: non-finite iterate", ErrNoConvergence)
			}
		}
		if converged {
			return nil
		}
	}
	return ErrNoConvergence
}

// resetLimits re-seeds all device limiting state from x.
func resetLimits(c *Circuit, x []float64) {
	for _, d := range c.devices {
		if ld, ok := d.(limitedDevice); ok {
			ld.ResetLimit(x)
		}
	}
}

// OperatingPoint solves the DC bias point using gmin stepping with a
// source-stepping fallback.
func OperatingPoint(c *Circuit, opt *Options) (*Solution, error) {
	if opt == nil {
		opt = DefaultOptions()
	}
	sc := newSolveContext(c, opt)
	x := make([]float64, c.matrixSize())
	if err := opSolve(sc, x); err != nil {
		return nil, err
	}
	return &Solution{ckt: c, x: x}, nil
}

// opSolve finds the DC operating point into x (also used by sweeps and the
// transient initial condition). x is used as the starting guess.
func opSolve(sc *solveContext, x []float64) error {
	c, opt := sc.ckt, sc.opt
	resetLimits(c, x)
	// Direct attempt from the supplied guess (fast path for warm starts).
	warm := append([]float64(nil), x...)
	if err := sc.newton(x, modeDC, 0, 0, opt.Gmin, opt.Gmin, 1); err == nil {
		return nil
	}
	// Gmin stepping: relax junctions with a large shunt, then tighten.
	copy(x, warm)
	for i := range x {
		x[i] = 0
	}
	resetLimits(c, x)
	ok := true
	for g := 1e-2; g >= opt.Gmin; g /= 10 {
		if err := sc.newton(x, modeDC, 0, 0, math.Max(g, opt.Gmin), g, 1); err != nil {
			ok = false
			break
		}
	}
	if ok {
		if err := sc.newton(x, modeDC, 0, 0, opt.Gmin, opt.Gmin, 1); err == nil {
			return nil
		}
	}
	// Source stepping: ramp all independent sources from zero.
	for i := range x {
		x[i] = 0
	}
	resetLimits(c, x)
	steps := 50
	for i := 1; i <= steps; i++ {
		scale := float64(i) / float64(steps)
		if err := sc.newton(x, modeDC, 0, 0, opt.Gmin, opt.Gmin, scale); err != nil {
			return fmt.Errorf("%w (source stepping failed at scale %.2f)", ErrNoConvergence, scale)
		}
	}
	return nil
}

// SweepResult holds a DC sweep: one committed solution per sweep value.
type SweepResult struct {
	ckt    *Circuit
	Values []float64
	Points []*Solution
}

// V returns the voltage series of the named node across the sweep.
func (r *SweepResult) V(node string) []float64 {
	out := make([]float64, len(r.Points))
	for i, s := range r.Points {
		out[i] = s.V(node)
	}
	return out
}

// DCSweep steps the waveform of src over [from, to] with the given step and
// solves the operating point at each value, warm-starting from the previous
// point. The source's waveform is restored afterwards.
func DCSweep(c *Circuit, src *VSource, from, to, step float64, opt *Options) (*SweepResult, error) {
	if opt == nil {
		opt = DefaultOptions()
	}
	if step <= 0 || to < from {
		return nil, fmt.Errorf("spice: bad sweep range [%g, %g] step %g", from, to, step)
	}
	saved := src.Wave
	defer func() { src.Wave = saved }()

	sc := newSolveContext(c, opt)
	x := make([]float64, c.matrixSize())
	res := &SweepResult{ckt: c}
	for v := from; v <= to+step/2; v += step {
		src.Wave = DC(v)
		if err := opSolve(sc, x); err != nil {
			return nil, fmt.Errorf("spice: DC sweep failed at %g V: %w", v, err)
		}
		res.Values = append(res.Values, v)
		res.Points = append(res.Points, &Solution{ckt: c, x: append([]float64(nil), x...)})
	}
	return res, nil
}

// TranResult holds a transient simulation: a time axis and one committed
// unknown vector per accepted timepoint.
type TranResult struct {
	ckt   *Circuit
	Times []float64
	xs    [][]float64
}

// V returns the voltage series of the named node.
func (r *TranResult) V(node string) []float64 {
	id, ok := r.ckt.nodeIndex[node]
	if !ok {
		panic(fmt.Sprintf("spice: unknown node %q", node))
	}
	out := make([]float64, len(r.xs))
	for i, x := range r.xs {
		out[i] = nodeV(x, id)
	}
	return out
}

// At returns the solution at timepoint index i.
func (r *TranResult) At(i int) *Solution { return &Solution{ckt: r.ckt, x: r.xs[i]} }

// SourceCurrent returns the branch-current series of a voltage source
// (positive flowing from the + terminal through the source to −).
func (r *TranResult) SourceCurrent(v *VSource) []float64 {
	idx := len(r.ckt.nodeNames) - 1 + v.branch
	out := make([]float64, len(r.xs))
	for i, x := range r.xs {
		out[i] = x[idx]
	}
	return out
}

// ChargeThrough integrates a voltage source's branch current over
// [t0, t1] by the trapezoidal rule, returning the transported charge in
// coulombs.
func (r *TranResult) ChargeThrough(v *VSource, t0, t1 float64) float64 {
	is := r.SourceCurrent(v)
	q := 0.0
	for i := 1; i < len(r.Times); i++ {
		a, b := r.Times[i-1], r.Times[i]
		if b <= t0 || a >= t1 {
			continue
		}
		lo, hi := a, b
		ia, ib := is[i-1], is[i]
		if lo < t0 {
			f := (t0 - a) / (b - a)
			ia = ia + f*(ib-ia)
			lo = t0
		}
		if hi > t1 {
			f := (t1 - a) / (b - a)
			ib = is[i-1] + f*(is[i]-is[i-1])
			hi = t1
		}
		q += 0.5 * (ia + ib) * (hi - lo)
	}
	return q
}

// Len returns the number of accepted timepoints.
func (r *TranResult) Len() int { return len(r.Times) }

// Transient runs a transient analysis from t=0 to tstop with nominal step
// dt, halving the step (down to dt/1024) on Newton failure. The initial
// condition is the DC operating point with sources at their t=0 values.
func Transient(c *Circuit, tstop, dt float64, opt *Options) (*TranResult, error) {
	if opt == nil {
		opt = DefaultOptions()
	}
	if tstop <= 0 || dt <= 0 {
		return nil, fmt.Errorf("spice: bad transient range tstop=%g dt=%g", tstop, dt)
	}
	sc := newSolveContext(c, opt)
	x := make([]float64, c.matrixSize())
	if err := opSolve(sc, x); err != nil {
		return nil, fmt.Errorf("spice: transient initial operating point: %w", err)
	}
	for _, d := range c.devices {
		if td, ok := d.(transientDevice); ok {
			td.StartTransient(x)
		}
	}
	res := &TranResult{ckt: c}
	record := func(t float64) {
		res.Times = append(res.Times, t)
		res.xs = append(res.xs, append([]float64(nil), x...))
	}
	record(0)

	t := 0.0
	minDt := dt / 1024
	maxDt := dt
	if opt.Adaptive {
		maxDt = dt * 64
		minDt = dt / 64
	}
	dvMax := opt.DVMax
	if dvMax <= 0 {
		dvMax = 0.1
	}
	nNodes := len(c.nodeNames) - 1
	h := dt
	xTry := make([]float64, len(x))
	for t < tstop-dt*1e-9 {
		if t+h > tstop {
			h = tstop - t
		}
		copy(xTry, x)
		resetLimits(c, xTry)
		err := sc.newton(xTry, modeTransient, t+h, h, opt.Gmin, opt.Gmin, 1)
		if err != nil {
			if h/2 < minDt {
				return nil, fmt.Errorf("spice: transient stalled at t=%.4g s: %w", t, err)
			}
			h /= 2
			continue
		}
		dv := 0.0
		if opt.Adaptive {
			for i := 0; i < nNodes; i++ {
				if d := math.Abs(xTry[i] - x[i]); d > dv {
					dv = d
				}
			}
			if dv > dvMax && h/2 >= minDt {
				h /= 2
				continue
			}
		}
		copy(x, xTry)
		t += h
		for _, d := range c.devices {
			if td, ok := d.(transientDevice); ok {
				td.AcceptStep(x, h)
			}
		}
		record(t)
		if opt.Adaptive {
			if dv < dvMax/4 {
				h = math.Min(h*1.5, maxDt)
			}
		} else if h < dt {
			h = math.Min(h*2, dt)
		}
	}
	return res, nil
}
