package spice

import "fmt"

// Resistor is a linear two-terminal resistance.
type Resistor struct {
	name string
	A, B NodeID
	R    float64
}

// AddResistor creates a resistor of r ohms between a and b.
func (c *Circuit) AddResistor(name string, a, b NodeID, r float64) *Resistor {
	if r <= 0 {
		panic(fmt.Sprintf("spice: resistor %s has non-positive resistance %g", name, r))
	}
	d := &Resistor{name: name, A: a, B: b, R: r}
	c.addDevice(d)
	return d
}

// DeviceName implements Device.
func (r *Resistor) DeviceName() string { return r.name }

// Stamp implements Device.
func (r *Resistor) Stamp(st *Stamper) { st.AddG(r.A, r.B, 1/r.R) }

// SetR changes the resistance (used when sweeping breakdown stages on an
// already-built circuit).
func (r *Resistor) SetR(v float64) {
	if v <= 0 {
		panic(fmt.Sprintf("spice: resistor %s set to non-positive resistance %g", r.name, v))
	}
	r.R = v
}

// Capacitor is a linear two-terminal capacitance, integrated with the
// trapezoidal rule in transient analysis and open in DC.
type Capacitor struct {
	name string
	A, B NodeID
	C    float64

	vPrev float64 // committed voltage at previous timepoint
	iPrev float64 // committed current at previous timepoint
}

// AddCapacitor creates a capacitor of f farads between a and b.
func (c *Circuit) AddCapacitor(name string, a, b NodeID, f float64) *Capacitor {
	if f < 0 {
		panic(fmt.Sprintf("spice: capacitor %s has negative capacitance %g", name, f))
	}
	d := &Capacitor{name: name, A: a, B: b, C: f}
	c.addDevice(d)
	return d
}

// DeviceName implements Device.
func (cp *Capacitor) DeviceName() string { return cp.name }

// Stamp implements Device.
func (cp *Capacitor) Stamp(st *Stamper) {
	if !st.Transient() || cp.C == 0 {
		return // open circuit in DC
	}
	// Trapezoidal companion: i = geq*v - (geq*vPrev + iPrev).
	geq := 2 * cp.C / st.Dt()
	ieq := geq*cp.vPrev + cp.iPrev
	st.AddG(cp.A, cp.B, geq)
	st.AddCurrent(cp.A, cp.B, -ieq)
}

// StartTransient implements transientDevice.
func (cp *Capacitor) StartTransient(x []float64) {
	cp.vPrev = nodeV(x, cp.A) - nodeV(x, cp.B)
	cp.iPrev = 0
}

// AcceptStep implements transientDevice.
func (cp *Capacitor) AcceptStep(x []float64, dt float64) {
	v := nodeV(x, cp.A) - nodeV(x, cp.B)
	geq := 2 * cp.C / dt
	cp.iPrev = geq*(v-cp.vPrev) - cp.iPrev
	cp.vPrev = v
}

// VSource is an independent voltage source with an arbitrary waveform.
type VSource struct {
	name   string
	P, N   NodeID
	Wave   Waveform
	branch int
}

// AddVSource creates a voltage source forcing V(p)-V(n) = wave(t).
func (c *Circuit) AddVSource(name string, p, n NodeID, wave Waveform) *VSource {
	d := &VSource{name: name, P: p, N: n, Wave: wave, branch: c.allocBranch()}
	c.addDevice(d)
	return d
}

// DeviceName implements Device.
func (v *VSource) DeviceName() string { return v.name }

// Stamp implements Device.
func (v *VSource) Stamp(st *Stamper) {
	st.StampVoltageSource(v.branch, v.P, v.N, v.Wave.At(st.Time())*st.SourceScale())
}

// Branch returns the MNA branch index carrying this source's current.
func (v *VSource) Branch() int { return v.branch }

// ISource is an independent current source pushing current from P to N
// through the external circuit (i.e. out of N's terminal into P's).
type ISource struct {
	name string
	P, N NodeID
	Wave Waveform
}

// AddISource creates a current source of wave(t) amps flowing from node p
// through the source to node n (conventional SPICE direction).
func (c *Circuit) AddISource(name string, p, n NodeID, wave Waveform) *ISource {
	d := &ISource{name: name, P: p, N: n, Wave: wave}
	c.addDevice(d)
	return d
}

// DeviceName implements Device.
func (i *ISource) DeviceName() string { return i.name }

// Stamp implements Device.
func (i *ISource) Stamp(st *Stamper) {
	st.AddCurrent(i.P, i.N, i.Wave.At(st.Time())*st.SourceScale())
}

// nodeV reads a node voltage out of a raw solution vector.
func nodeV(x []float64, n NodeID) float64 {
	if n == Ground {
		return 0
	}
	return x[int(n)-1]
}
