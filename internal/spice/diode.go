package spice

import (
	"fmt"
	"math"
)

// Thermal voltage kT/q at 300 K, used by all junction devices.
const thermalVoltage = 0.025852

// maxExpArg bounds the exponent in junction equations; beyond it the
// exponential is extended linearly so derivatives stay finite.
const maxExpArg = 300.0

// DiodeParams holds pn-junction model parameters. The OBD breakdown network
// manipulates Isat directly — the paper models breakdown progression as an
// increase in the junction saturation current.
type DiodeParams struct {
	Isat float64 // saturation current (A)
	N    float64 // emission coefficient (ideality factor); 0 means 1
}

// Diode is a pn junction from anode A to cathode K, using the Shockley
// equation with SPICE3-style pnjlim junction-voltage limiting for Newton
// robustness. A gmin conductance is always stamped in parallel.
type Diode struct {
	name string
	A, K NodeID
	P    DiodeParams

	vLim float64 // limited junction voltage from the previous iterate
}

// AddDiode creates a diode from anode a to cathode k.
func (c *Circuit) AddDiode(name string, a, k NodeID, p DiodeParams) *Diode {
	if p.Isat <= 0 {
		panic(fmt.Sprintf("spice: diode %s has non-positive Isat %g", name, p.Isat))
	}
	if p.N == 0 {
		p.N = 1
	}
	d := &Diode{name: name, A: a, K: k, P: p}
	c.addDevice(d)
	return d
}

// DeviceName implements Device.
func (d *Diode) DeviceName() string { return d.name }

// SetIsat changes the saturation current (breakdown-stage sweeps).
func (d *Diode) SetIsat(isat float64) {
	if isat <= 0 {
		panic(fmt.Sprintf("spice: diode %s Isat set to non-positive %g", d.name, isat))
	}
	d.P.Isat = isat
}

// vte returns the effective thermal voltage N*Vt.
func (d *Diode) vte() float64 { return d.P.N * thermalVoltage }

// vcrit returns the critical voltage used by pnjlim.
func (d *Diode) vcrit() float64 {
	vte := d.vte()
	return vte * math.Log(vte/(math.Sqrt2*d.P.Isat))
}

// ResetLimit implements limitedDevice: seed the limiting state from the
// starting solution so the first iteration limits against something sane.
func (d *Diode) ResetLimit(x []float64) {
	v := nodeV(x, d.A) - nodeV(x, d.K)
	d.vLim = numericClampDiode(v, d.vcrit())
}

func numericClampDiode(v, vcrit float64) float64 {
	if v > vcrit {
		return vcrit
	}
	return v
}

// pnjlim is the SPICE3 junction-voltage limiting algorithm: it prevents the
// exponential from exploding between Newton iterations while guaranteeing
// the limited sequence converges to the true solution.
func pnjlim(vnew, vold, vt, vcrit float64) float64 {
	if vnew <= vcrit || math.Abs(vnew-vold) <= 2*vt {
		return vnew
	}
	if vold > 0 {
		arg := 1 + (vnew-vold)/vt
		if arg > 0 {
			return vold + vt*math.Log(arg)
		}
		return vcrit
	}
	return vt * math.Log(vnew/vt)
}

// current returns (id, gd) at junction voltage v, with the exponential
// linearly extended beyond maxExpArg.
func (d *Diode) current(v float64) (id, gd float64) {
	vte := d.vte()
	arg := v / vte
	if arg > maxExpArg {
		e := math.Exp(maxExpArg)
		id = d.P.Isat * (e*(1+arg-maxExpArg) - 1)
		gd = d.P.Isat * e / vte
		return id, gd
	}
	if arg < -maxExpArg {
		return -d.P.Isat, d.P.Isat / vte * math.Exp(-maxExpArg)
	}
	e := math.Exp(arg)
	return d.P.Isat * (e - 1), d.P.Isat * e / vte
}

// Stamp implements Device.
func (d *Diode) Stamp(st *Stamper) {
	vraw := st.V(d.A) - st.V(d.K)
	v := pnjlim(vraw, d.vLim, d.vte(), d.vcrit())
	st.NoteLimited(vraw, v)
	d.vLim = v
	id, gd := d.current(v)
	g := gd + st.Gmin()
	ieq := id - gd*v
	st.AddG(d.A, d.K, g)
	st.AddCurrent(d.A, d.K, ieq)
}

// Current returns the diode current for a committed solution vector
// (observability helper for tests and experiments).
func (d *Diode) Current(x []float64) float64 {
	id, _ := d.current(nodeV(x, d.A) - nodeV(x, d.K))
	return id
}
