package spice

import (
	"fmt"
	"math"
)

// MOSPolarity distinguishes NMOS from PMOS devices.
type MOSPolarity int

// MOSFET polarities.
const (
	NMOS MOSPolarity = iota
	PMOS
)

// String implements fmt.Stringer.
func (p MOSPolarity) String() string {
	if p == PMOS {
		return "PMOS"
	}
	return "NMOS"
}

// MOSParams holds Level-1 (Shichman–Hodges) model parameters plus the
// constant intrinsic capacitances used for timing.
type MOSParams struct {
	Polarity MOSPolarity
	VT0      float64 // threshold voltage magnitude (V), positive for both polarities
	KP       float64 // transconductance parameter µCox (A/V²)
	Lambda   float64 // channel-length modulation (1/V)
	W        float64 // channel width (m)
	L        float64 // channel length (m)
	Cgs      float64 // gate-source capacitance (F)
	Cgd      float64 // gate-drain capacitance (F)
	Cdb      float64 // drain-bulk junction capacitance (F)
}

// beta returns KP·W/L.
func (p *MOSParams) beta() float64 { return p.KP * p.W / p.L }

// MOSFET is a four-terminal Level-1 MOS transistor. The body terminal is
// used only as the reference for the drain-bulk capacitance and as the
// attachment point for the OBD substrate resistance; the body effect on
// threshold voltage is not modeled (gamma = 0), which is sufficient for the
// rail-tied bulks in static CMOS gates.
type MOSFET struct {
	name       string
	D, G, S, B NodeID
	P          MOSParams

	// Per-iteration limiting state.
	vgsLim, vdsLim float64

	// Intrinsic capacitor companion states (trapezoidal).
	cgs, cgd, cdb capState
}

type capState struct {
	vPrev, iPrev float64
}

// AddMOSFET creates a MOSFET with terminals drain, gate, source, bulk.
func (c *Circuit) AddMOSFET(name string, d, g, s, b NodeID, p MOSParams) *MOSFET {
	if p.W <= 0 || p.L <= 0 || p.KP <= 0 {
		panic(fmt.Sprintf("spice: MOSFET %s needs positive W, L, KP", name))
	}
	m := &MOSFET{name: name, D: d, G: g, S: s, B: b, P: p}
	c.addDevice(m)
	return m
}

// DeviceName implements Device.
func (m *MOSFET) DeviceName() string { return m.name }

// sign returns +1 for NMOS, -1 for PMOS; the PMOS equations are the NMOS
// equations evaluated on negated terminal voltages.
func (m *MOSFET) sign() float64 {
	if m.P.Polarity == PMOS {
		return -1
	}
	return 1
}

// ids computes the drain-source channel current and its derivatives in the
// NMOS frame: vgs, vds are already polarity-normalized and vds >= 0.
func (m *MOSFET) ids(vgs, vds float64) (id, gm, gds float64) {
	vov := vgs - m.P.VT0
	if vov <= 0 {
		return 0, 0, 0 // cutoff; gmin is added by the caller
	}
	b := m.P.beta()
	lam := m.P.Lambda
	if vds < vov {
		// Triode region.
		cl := 1 + lam*vds
		id = b * (vov*vds - 0.5*vds*vds) * cl
		gm = b * vds * cl
		gds = b*(vov-vds)*cl + b*(vov*vds-0.5*vds*vds)*lam
		return id, gm, gds
	}
	// Saturation.
	cl := 1 + lam*vds
	id = 0.5 * b * vov * vov * cl
	gm = b * vov * cl
	gds = 0.5 * b * vov * vov * lam
	return id, gm, gds
}

// ResetLimit implements limitedDevice.
func (m *MOSFET) ResetLimit(x []float64) {
	sg := m.sign()
	m.vgsLim = sg * (nodeV(x, m.G) - nodeV(x, m.S))
	m.vdsLim = sg * (nodeV(x, m.D) - nodeV(x, m.S))
}

// limitStep bounds the per-iteration change of a controlling voltage; a
// simple symmetric clamp is robust for the rail-to-rail digital circuits
// this simulator targets.
func limitStep(vnew, vold, maxDelta float64) float64 {
	if vnew > vold+maxDelta {
		return vold + maxDelta
	}
	if vnew < vold-maxDelta {
		return vold - maxDelta
	}
	return vnew
}

// Stamp implements Device.
func (m *MOSFET) Stamp(st *Stamper) {
	sg := m.sign()
	vgsRaw := sg * (st.V(m.G) - st.V(m.S))
	vdsRaw := sg * (st.V(m.D) - st.V(m.S))
	vgs := limitStep(vgsRaw, m.vgsLim, 1.0)
	vds := limitStep(vdsRaw, m.vdsLim, 1.0)
	st.NoteLimited(vgsRaw, vgs)
	st.NoteLimited(vdsRaw, vds)
	m.vgsLim, m.vdsLim = vgs, vds

	// Normalize to vds >= 0 by swapping source and drain roles; the
	// controlling voltage in the swapped frame is vgd.
	dNode, sNode := m.D, m.S
	if vds < 0 {
		dNode, sNode = m.S, m.D
		vgs -= vds
		vds = -vds
	}
	id, gm, gds := m.ids(vgs, vds)

	// Physical channel current flowing dNode→sNode is sg·id(vgs, vds) with
	// vgs = sg·(Vg−Vsrc), so dI/dVg = gm and dI/dVd = gds for both
	// polarities — the two sign factors cancel in the conductance stamps —
	// while the Newton equivalent current keeps a single sg factor.
	st.AddG4(dNode, sNode, m.G, sNode, gm)
	st.AddG(dNode, sNode, gds+st.Gmin())
	st.AddCurrent(dNode, sNode, sg*(id-gm*vgs-gds*vds))

	// Intrinsic capacitances.
	if st.Transient() {
		m.stampCap(st, &m.cgs, m.G, m.S, m.P.Cgs)
		m.stampCap(st, &m.cgd, m.G, m.D, m.P.Cgd)
		m.stampCap(st, &m.cdb, m.D, m.B, m.P.Cdb)
	}
}

// stampCap stamps one intrinsic capacitance with the trapezoidal companion.
func (m *MOSFET) stampCap(st *Stamper, cs *capState, a, b NodeID, c float64) {
	if c == 0 {
		return
	}
	geq := 2 * c / st.Dt()
	ieq := geq*cs.vPrev + cs.iPrev
	st.AddG(a, b, geq)
	st.AddCurrent(a, b, -ieq)
}

// StartTransient implements transientDevice.
func (m *MOSFET) StartTransient(x []float64) {
	m.cgs = capState{vPrev: nodeV(x, m.G) - nodeV(x, m.S)}
	m.cgd = capState{vPrev: nodeV(x, m.G) - nodeV(x, m.D)}
	m.cdb = capState{vPrev: nodeV(x, m.D) - nodeV(x, m.B)}
}

// AcceptStep implements transientDevice.
func (m *MOSFET) AcceptStep(x []float64, dt float64) {
	accept := func(cs *capState, a, b NodeID, c float64) {
		if c == 0 {
			return
		}
		v := nodeV(x, a) - nodeV(x, b)
		geq := 2 * c / dt
		cs.iPrev = geq*(v-cs.vPrev) - cs.iPrev
		cs.vPrev = v
	}
	accept(&m.cgs, m.G, m.S, m.P.Cgs)
	accept(&m.cgd, m.G, m.D, m.P.Cgd)
	accept(&m.cdb, m.D, m.B, m.P.Cdb)
}

// ChannelCurrent returns the DC channel current (positive into the drain
// for NMOS) at a committed solution — an observability helper.
func (m *MOSFET) ChannelCurrent(x []float64) float64 {
	sg := m.sign()
	vgs := sg * (nodeV(x, m.G) - nodeV(x, m.S))
	vds := sg * (nodeV(x, m.D) - nodeV(x, m.S))
	flip := 1.0
	if vds < 0 {
		vgs -= vds
		vds = -vds
		flip = -1
	}
	id, _, _ := m.ids(vgs, vds)
	return sg * flip * id
}

// OperatingRegion names the DC region for diagnostics.
func (m *MOSFET) OperatingRegion(x []float64) string {
	sg := m.sign()
	vgs := sg * (nodeV(x, m.G) - nodeV(x, m.S))
	vds := math.Abs(sg * (nodeV(x, m.D) - nodeV(x, m.S)))
	if vds == 0 {
		vds = 0
	}
	vov := vgs - m.P.VT0
	switch {
	case vov <= 0:
		return "cutoff"
	case vds < vov:
		return "triode"
	default:
		return "saturation"
	}
}
