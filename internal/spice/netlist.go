package spice

import (
	"fmt"
	"sort"
	"strings"
)

// Netlist renders the circuit in a SPICE-deck-like text form — one card
// per device with node names and parameters. It exists for debuggability
// and interchange: the decks built programmatically by the cells package
// can be inspected, diffed, or fed to an external simulator for
// cross-checking.
func Netlist(c *Circuit) string {
	var b strings.Builder
	fmt.Fprintf(&b, "* %d nodes, %d devices\n", c.NumNodes(), len(c.Devices()))
	for _, d := range c.Devices() {
		switch dev := d.(type) {
		case *Resistor:
			fmt.Fprintf(&b, "R%s %s %s %g\n", dev.name, c.NodeName(dev.A), c.NodeName(dev.B), dev.R)
		case *Capacitor:
			fmt.Fprintf(&b, "C%s %s %s %g\n", dev.name, c.NodeName(dev.A), c.NodeName(dev.B), dev.C)
		case *VSource:
			fmt.Fprintf(&b, "V%s %s %s %s\n", dev.name, c.NodeName(dev.P), c.NodeName(dev.N), waveString(dev.Wave))
		case *ISource:
			fmt.Fprintf(&b, "I%s %s %s %s\n", dev.name, c.NodeName(dev.P), c.NodeName(dev.N), waveString(dev.Wave))
		case *Diode:
			fmt.Fprintf(&b, "D%s %s %s IS=%g N=%g\n", dev.name, c.NodeName(dev.A), c.NodeName(dev.K), dev.P.Isat, dev.P.N)
		case *MOSFET:
			fmt.Fprintf(&b, "M%s %s %s %s %s %v VT0=%g KP=%g LAMBDA=%g W=%g L=%g\n",
				dev.name, c.NodeName(dev.D), c.NodeName(dev.G), c.NodeName(dev.S), c.NodeName(dev.B),
				dev.P.Polarity, dev.P.VT0, dev.P.KP, dev.P.Lambda, dev.P.W, dev.P.L)
		default:
			fmt.Fprintf(&b, "* unknown device %s\n", d.DeviceName())
		}
	}
	b.WriteString(".end\n")
	return b.String()
}

func waveString(w Waveform) string {
	switch wf := w.(type) {
	case DC:
		return fmt.Sprintf("DC %g", float64(wf))
	case *PWL:
		parts := make([]string, 0, 2*len(wf.Points))
		for _, p := range wf.Points {
			parts = append(parts, fmt.Sprintf("%g %g", p.T, p.V))
		}
		return "PWL(" + strings.Join(parts, " ") + ")"
	case *Pulse:
		return fmt.Sprintf("PULSE(%g %g %g %g %g %g %g)",
			wf.V1, wf.V2, wf.Delay, wf.Rise, wf.Fall, wf.Width, wf.Period)
	default:
		return "DC 0"
	}
}

// Stats summarizes a circuit's device census by type — a quick structural
// fingerprint used in logs and tests.
func Stats(c *Circuit) map[string]int {
	out := make(map[string]int)
	for _, d := range c.Devices() {
		switch d.(type) {
		case *Resistor:
			out["R"]++
		case *Capacitor:
			out["C"]++
		case *VSource:
			out["V"]++
		case *ISource:
			out["I"]++
		case *Diode:
			out["D"]++
		case *MOSFET:
			out["M"]++
		default:
			out["?"]++
		}
	}
	return out
}

// SortedStats renders Stats deterministically.
func SortedStats(c *Circuit) string {
	st := Stats(c)
	keys := make([]string, 0, len(st))
	for k := range st {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%d", k, st[k]))
	}
	return strings.Join(parts, " ")
}
