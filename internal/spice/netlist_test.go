package spice

import (
	"strings"
	"testing"
)

func TestNetlistRendersAllDeviceTypes(t *testing.T) {
	p := Default350()
	c := NewCircuit()
	vdd := c.Node("vdd")
	in := c.Node("in")
	out := c.Node("out")
	c.AddVSource("VDD", vdd, Ground, DC(p.VDD))
	c.AddVSource("VIN", in, Ground, NewPWL(0, 0, 1e-9, 3.3))
	c.AddISource("IB", vdd, out, &Pulse{V1: 0, V2: 1e-3, Rise: 1e-9, Fall: 1e-9, Width: 2e-9})
	c.AddResistor("R1", in, out, 1e3)
	c.AddCapacitor("C1", out, Ground, 1e-15)
	c.AddDiode("D1", out, Ground, DiodeParams{Isat: 1e-14})
	c.AddMOSFET("M1", out, in, Ground, Ground, p.NMOSParams(1e-6))
	nl := Netlist(c)
	for _, want := range []string{
		"RR1 in out 1000", "CC1 out 0 1e-15", "VVDD vdd 0 DC 3.3",
		"PWL(0 0 1e-09 3.3)", "PULSE(", "DD1 out 0 IS=1e-14",
		"MM1 out in 0 0 NMOS", ".end",
	} {
		if !strings.Contains(nl, want) {
			t.Fatalf("netlist missing %q:\n%s", want, nl)
		}
	}
}

func TestStats(t *testing.T) {
	c := NewCircuit()
	a := c.Node("a")
	c.AddVSource("V", a, Ground, DC(1))
	c.AddResistor("R1", a, Ground, 1)
	c.AddResistor("R2", a, Ground, 1)
	st := Stats(c)
	if st["R"] != 2 || st["V"] != 1 {
		t.Fatalf("stats %v", st)
	}
	if s := SortedStats(c); s != "R=2 V=1" {
		t.Fatalf("sorted stats %q", s)
	}
}
