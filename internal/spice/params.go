package spice

// Process is a synthetic CMOS process card. It plays the role of the
// 0.35 µm-class, 3.3 V technology behind the paper's HSPICE results: only
// the relative timing behaviour matters for the reproduction, so the card
// is calibrated (see cells package tests) to give ≈100 ps fault-free NAND
// transitions in the Fig. 5 measurement harness.
type Process struct {
	VDD       float64 // supply voltage (V)
	L         float64 // drawn channel length (m)
	NVT0      float64 // NMOS threshold (V)
	PVT0      float64 // PMOS threshold magnitude (V)
	NKP       float64 // NMOS transconductance µnCox (A/V²)
	PKP       float64 // PMOS transconductance µpCox (A/V²)
	Lambda    float64 // channel-length modulation (1/V)
	CoxArea   float64 // gate oxide capacitance per area (F/m²)
	COverlap  float64 // gate overlap capacitance per width (F/m)
	CJunction float64 // drain junction capacitance per width (F/m)
	WNUnit    float64 // default NMOS width (m)
	WPUnit    float64 // default PMOS width (m)
	WNStack   float64 // NMOS width used in series stacks (m)
	WPStack   float64 // PMOS width used in series stacks (m)
}

// Default350 returns the process card used throughout the reproduction.
func Default350() *Process {
	return &Process{
		VDD:       3.3,
		L:         0.35e-6,
		NVT0:      0.60,
		PVT0:      0.70,
		NKP:       120e-6,
		PKP:       45e-6,
		Lambda:    0.05,
		CoxArea:   4.6e-3,
		COverlap:  3.0e-10,
		CJunction: 8.0e-10,
		WNUnit:    1.0e-6,
		WPUnit:    2.0e-6,
		WNStack:   2.0e-6,
		WPStack:   4.0e-6,
	}
}

// NMOSParams builds Level-1 parameters for an NMOS of width w.
func (p *Process) NMOSParams(w float64) MOSParams {
	return p.mos(NMOS, p.NVT0, p.NKP, w)
}

// PMOSParams builds Level-1 parameters for a PMOS of width w.
func (p *Process) PMOSParams(w float64) MOSParams {
	return p.mos(PMOS, p.PVT0, p.PKP, w)
}

func (p *Process) mos(pol MOSPolarity, vt0, kp, w float64) MOSParams {
	half := 0.5 * p.CoxArea * w * p.L
	return MOSParams{
		Polarity: pol,
		VT0:      vt0,
		KP:       kp,
		Lambda:   p.Lambda,
		W:        w,
		L:        p.L,
		Cgs:      half + p.COverlap*w,
		Cgd:      half + p.COverlap*w,
		Cdb:      p.CJunction * w,
	}
}
