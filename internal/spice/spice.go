// Package spice implements a small SPICE-class analog circuit simulator:
// modified nodal analysis (MNA) with Newton–Raphson iteration for the
// nonlinear devices, a DC operating-point solver with gmin and source
// stepping, DC sweeps, and trapezoidal transient analysis.
//
// It exists because the paper reproduced by this repository (Carter, Ozev,
// Sorin, DATE 2005) derives its results from HSPICE simulations of CMOS
// gates whose transistors are augmented with a diode–resistor gate-oxide
// breakdown network. The simulator supports exactly the device set that
// analysis needs — resistors, capacitors, independent sources, pn-junction
// diodes and Level-1 MOSFETs — and is deliberately dense-matrix and
// single-threaded: the largest circuit in the reproduction is ~120 nodes.
package spice

import (
	"fmt"

	"gobd/internal/numeric"
)

// NodeID identifies a circuit node. Ground is always NodeID 0.
type NodeID int

// Ground is the reference node; its voltage is 0 by definition.
const Ground NodeID = 0

// analysisMode distinguishes DC (capacitors open) from transient stamping.
type analysisMode int

const (
	modeDC analysisMode = iota
	modeTransient
)

// Device is the interface all circuit elements implement. Stamp must add
// the device's linearized contribution for the current Newton iterate into
// the stamper's matrix and right-hand side.
type Device interface {
	// DeviceName returns the instance name (unique within a circuit).
	DeviceName() string
	// Stamp adds the device contribution for the current iterate.
	Stamp(st *Stamper)
}

// transientDevice is implemented by devices with time-dependent state
// (capacitors, MOSFET internal capacitances).
type transientDevice interface {
	// StartTransient initializes state from the DC operating point x.
	StartTransient(x []float64)
	// AcceptStep commits the just-solved timepoint x (step size dt).
	AcceptStep(x []float64, dt float64)
}

// limitedDevice is implemented by devices that carry per-iteration limiting
// state (diodes, MOSFETs). ResetLimit clears it before a fresh solve.
type limitedDevice interface {
	ResetLimit(x []float64)
}

// Circuit is a flat netlist of named nodes and devices.
type Circuit struct {
	nodeNames []string
	nodeIndex map[string]NodeID
	devices   []Device
	deviceIdx map[string]int
	branches  int // number of voltage-source branch currents
}

// NewCircuit returns an empty circuit containing only the ground node "0".
func NewCircuit() *Circuit {
	c := &Circuit{nodeIndex: make(map[string]NodeID), deviceIdx: make(map[string]int)}
	c.nodeNames = append(c.nodeNames, "0")
	c.nodeIndex["0"] = Ground
	return c
}

// Node returns the NodeID for name, creating the node on first use.
// The names "0", "gnd" and "GND" all alias the ground node.
func (c *Circuit) Node(name string) NodeID {
	if name == "gnd" || name == "GND" {
		name = "0"
	}
	if id, ok := c.nodeIndex[name]; ok {
		return id
	}
	id := NodeID(len(c.nodeNames))
	c.nodeNames = append(c.nodeNames, name)
	c.nodeIndex[name] = id
	return id
}

// NodeName returns the name of a node.
func (c *Circuit) NodeName(id NodeID) string { return c.nodeNames[id] }

// NumNodes returns the node count including ground.
func (c *Circuit) NumNodes() int { return len(c.nodeNames) }

// Devices returns the device list in insertion order.
func (c *Circuit) Devices() []Device { return c.devices }

// Device returns the device with the given instance name, or nil.
func (c *Circuit) Device(name string) Device {
	if i, ok := c.deviceIdx[name]; ok {
		return c.devices[i]
	}
	return nil
}

// addDevice registers a device, panicking on duplicate instance names
// (a construction bug, not a runtime condition).
func (c *Circuit) addDevice(d Device) {
	name := d.DeviceName()
	if _, dup := c.deviceIdx[name]; dup {
		panic(fmt.Sprintf("spice: duplicate device name %q", name))
	}
	c.deviceIdx[name] = len(c.devices)
	c.devices = append(c.devices, d)
}

// allocBranch reserves an MNA branch-current unknown (voltage sources).
func (c *Circuit) allocBranch() int {
	b := c.branches
	c.branches++
	return b
}

// matrixSize is the MNA system dimension: non-ground nodes plus branches.
func (c *Circuit) matrixSize() int { return len(c.nodeNames) - 1 + c.branches }

// Stamper carries the MNA system being assembled for one Newton iteration.
// Devices read the current iterate through V/Branch and write through
// AddG/AddRHS and the voltage-source helpers. Ground rows/columns are
// dropped implicitly: stamps mentioning ground are discarded.
type Stamper struct {
	ckt    *Circuit
	m      *numeric.Matrix
	rhs    []float64
	x      []float64 // current iterate: node voltages then branch currents
	mode   analysisMode
	time   float64
	dt     float64
	gmin   float64 // junction/channel minimum conductance (gmin stepping)
	gshunt float64 // node-to-ground shunt used only while gmin stepping
	scale  float64 // independent-source scale factor (source stepping)

	limitHit bool // a device materially limited its controlling voltage
}

// NoteLimited is called by devices whose controlling voltage was clipped by
// per-iteration limiting. While limiting is active the iterate can look
// stationary without satisfying the device equations, so the Newton loop
// must not declare convergence.
func (st *Stamper) NoteLimited(vraw, vlim float64) {
	if d := vraw - vlim; d > 1e-6 || d < -1e-6 {
		st.limitHit = true
	}
}

// V returns the voltage of node n in the current iterate.
func (st *Stamper) V(n NodeID) float64 {
	if n == Ground {
		return 0
	}
	return st.x[int(n)-1]
}

// Branch returns the current of MNA branch b in the current iterate.
func (st *Stamper) Branch(b int) float64 {
	return st.x[len(st.ckt.nodeNames)-1+b]
}

// Gmin returns the active minimum junction conductance.
func (st *Stamper) Gmin() float64 { return st.gmin }

// SourceScale returns the independent-source scale factor (1 except during
// source stepping).
func (st *Stamper) SourceScale() float64 { return st.scale }

// Time returns the transient timepoint being solved (0 in DC).
func (st *Stamper) Time() float64 { return st.time }

// Dt returns the transient step size (0 in DC).
func (st *Stamper) Dt() float64 { return st.dt }

// Transient reports whether the stamp is for a transient timepoint.
func (st *Stamper) Transient() bool { return st.mode == modeTransient }

// row maps a node to its matrix row, or -1 for ground.
func (st *Stamper) row(n NodeID) int { return int(n) - 1 }

// AddG stamps a conductance g between nodes a and b.
func (st *Stamper) AddG(a, b NodeID, g float64) {
	ra, rb := st.row(a), st.row(b)
	if ra >= 0 {
		st.m.Add(ra, ra, g)
	}
	if rb >= 0 {
		st.m.Add(rb, rb, g)
	}
	if ra >= 0 && rb >= 0 {
		st.m.Add(ra, rb, -g)
		st.m.Add(rb, ra, -g)
	}
}

// AddG4 stamps a transconductance: current g*(Vc - Vd) flowing into node a
// and out of node b.
func (st *Stamper) AddG4(a, b, cNode, dNode NodeID, g float64) {
	ra, rb, rc, rd := st.row(a), st.row(b), st.row(cNode), st.row(dNode)
	if ra >= 0 && rc >= 0 {
		st.m.Add(ra, rc, g)
	}
	if ra >= 0 && rd >= 0 {
		st.m.Add(ra, rd, -g)
	}
	if rb >= 0 && rc >= 0 {
		st.m.Add(rb, rc, -g)
	}
	if rb >= 0 && rd >= 0 {
		st.m.Add(rb, rd, g)
	}
}

// AddCurrent stamps a constant current i flowing from node a to node b
// through the device (i.e. out of a, into b).
func (st *Stamper) AddCurrent(a, b NodeID, i float64) {
	if ra := st.row(a); ra >= 0 {
		st.rhs[ra] -= i
	}
	if rb := st.row(b); rb >= 0 {
		st.rhs[rb] += i
	}
}

// StampVoltageSource stamps branch b forcing V(p) - V(n) = v.
func (st *Stamper) StampVoltageSource(b int, p, n NodeID, v float64) {
	br := len(st.ckt.nodeNames) - 1 + b
	if rp := st.row(p); rp >= 0 {
		st.m.Add(rp, br, 1)
		st.m.Add(br, rp, 1)
	}
	if rn := st.row(n); rn >= 0 {
		st.m.Add(rn, br, -1)
		st.m.Add(br, rn, -1)
	}
	st.rhs[br] += v
}
