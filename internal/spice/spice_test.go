package spice

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVoltageDividerOP(t *testing.T) {
	c := NewCircuit()
	in := c.Node("in")
	mid := c.Node("mid")
	c.AddVSource("V1", in, Ground, DC(10))
	c.AddResistor("R1", in, mid, 1e3)
	c.AddResistor("R2", mid, Ground, 3e3)
	s, err := OperatingPoint(c, nil)
	if err != nil {
		t.Fatalf("op: %v", err)
	}
	if got := s.V("mid"); math.Abs(got-7.5) > 1e-6 {
		t.Fatalf("divider mid = %g, want 7.5", got)
	}
	// Source current: 10V over 4k = 2.5mA flowing + to - through source.
	v1 := c.Device("V1").(*VSource)
	if got := s.SourceCurrent(v1); math.Abs(got+2.5e-3) > 1e-8 {
		t.Fatalf("source current = %g, want -2.5e-3", got)
	}
}

func TestRCTransientMatchesAnalytic(t *testing.T) {
	// Step a 1V source into R=1k, C=1n: v(t) = 1 - exp(-t/RC), tau = 1 µs.
	c := NewCircuit()
	in := c.Node("in")
	out := c.Node("out")
	c.AddVSource("V1", in, Ground, NewPWL(0, 0, 1e-9, 1))
	c.AddResistor("R1", in, out, 1e3)
	c.AddCapacitor("C1", out, Ground, 1e-9)
	res, err := Transient(c, 5e-6, 5e-9, nil)
	if err != nil {
		t.Fatalf("tran: %v", err)
	}
	vs := res.V("out")
	tau := 1e-6
	worst := 0.0
	for i, tm := range res.Times {
		if tm < 10e-9 {
			continue
		}
		want := 1 - math.Exp(-(tm-1e-9)/tau)
		if d := math.Abs(vs[i] - want); d > worst {
			worst = d
		}
	}
	if worst > 5e-3 {
		t.Fatalf("RC transient max error %g V", worst)
	}
	if final := vs[len(vs)-1]; math.Abs(final-1) > 1e-2 {
		t.Fatalf("RC final value %g, want ~1", final)
	}
}

func TestDiodeResistorOP(t *testing.T) {
	// 5V -> 1k -> diode to ground. Drop should be ~0.7V for Isat=1e-14.
	c := NewCircuit()
	in := c.Node("in")
	a := c.Node("a")
	c.AddVSource("V1", in, Ground, DC(5))
	c.AddResistor("R1", in, a, 1e3)
	d := c.AddDiode("D1", a, Ground, DiodeParams{Isat: 1e-14})
	s, err := OperatingPoint(c, nil)
	if err != nil {
		t.Fatalf("op: %v", err)
	}
	vd := s.V("a")
	if vd < 0.55 || vd > 0.85 {
		t.Fatalf("diode drop %g V outside [0.55, 0.85]", vd)
	}
	// KCL: resistor current equals diode current.
	ir := (5 - vd) / 1e3
	id := d.Current(s.Raw())
	if math.Abs(ir-id)/ir > 1e-3 {
		t.Fatalf("KCL violated: iR=%g iD=%g", ir, id)
	}
}

func TestDiodeReverseBias(t *testing.T) {
	c := NewCircuit()
	in := c.Node("in")
	a := c.Node("a")
	c.AddVSource("V1", in, Ground, DC(-5))
	c.AddResistor("R1", in, a, 1e3)
	c.AddDiode("D1", a, Ground, DiodeParams{Isat: 1e-14})
	s, err := OperatingPoint(c, nil)
	if err != nil {
		t.Fatalf("op: %v", err)
	}
	// Essentially all of -5V appears across the diode.
	if vd := s.V("a"); vd > -4.9 {
		t.Fatalf("reverse-biased diode should block: v(a)=%g", vd)
	}
}

func TestTinyIsatDiodeLargeTurnOn(t *testing.T) {
	// The OBD model uses extremely small saturation currents; the effective
	// turn-on voltage then exceeds 1V. 3.3V -> 500Ω -> diode.
	c := NewCircuit()
	in := c.Node("in")
	a := c.Node("a")
	c.AddVSource("V1", in, Ground, DC(3.3))
	c.AddResistor("R1", in, a, 500)
	d := c.AddDiode("D1", a, Ground, DiodeParams{Isat: 2e-28})
	s, err := OperatingPoint(c, nil)
	if err != nil {
		t.Fatalf("op: %v", err)
	}
	vd := s.V("a")
	if vd < 1.2 || vd > 2.2 {
		t.Fatalf("tiny-Isat diode drop %g V outside [1.2, 2.2]", vd)
	}
	if id := d.Current(s.Raw()); id < 1e-3 {
		t.Fatalf("leakage current %g A, want mA-scale", id)
	}
}

func TestNMOSSaturationCurrent(t *testing.T) {
	p := Default350()
	c := NewCircuit()
	vd := c.Node("d")
	vg := c.Node("g")
	c.AddVSource("VD", vd, Ground, DC(3.3))
	c.AddVSource("VG", vg, Ground, DC(2.0))
	mp := p.NMOSParams(1e-6)
	mp.Lambda = 0 // exact square law for the check
	m := c.AddMOSFET("M1", vd, vg, Ground, Ground, mp)
	s, err := OperatingPoint(c, nil)
	if err != nil {
		t.Fatalf("op: %v", err)
	}
	beta := mp.KP * mp.W / mp.L
	want := 0.5 * beta * (2.0 - mp.VT0) * (2.0 - mp.VT0)
	got := m.ChannelCurrent(s.Raw())
	if math.Abs(got-want)/want > 1e-6 {
		t.Fatalf("Idsat = %g, want %g", got, want)
	}
	if r := m.OperatingRegion(s.Raw()); r != "saturation" {
		t.Fatalf("region %q, want saturation", r)
	}
}

func TestPMOSSymmetry(t *testing.T) {
	// A PMOS biased with mirrored voltages must carry the mirrored current.
	p := Default350()
	build := func(pol MOSPolarity) float64 {
		c := NewCircuit()
		d := c.Node("d")
		g := c.Node("g")
		s := c.Node("s")
		var mp MOSParams
		if pol == NMOS {
			c.AddVSource("VS", s, Ground, DC(0))
			c.AddVSource("VG", g, Ground, DC(2.5))
			c.AddVSource("VD", d, Ground, DC(1.0))
			mp = p.NMOSParams(1e-6)
		} else {
			c.AddVSource("VS", s, Ground, DC(0))
			c.AddVSource("VG", g, Ground, DC(-2.5))
			c.AddVSource("VD", d, Ground, DC(-1.0))
			mp = p.PMOSParams(1e-6)
			mp.VT0 = p.NVT0 // match thresholds for the symmetry check
			mp.KP = p.NKP
		}
		m := c.AddMOSFET("M1", d, g, s, Ground, mp)
		sol, err := OperatingPoint(c, nil)
		if err != nil {
			t.Fatalf("op(%v): %v", pol, err)
		}
		return m.ChannelCurrent(sol.Raw())
	}
	in := build(NMOS)
	ip := build(PMOS)
	if math.Abs(in+ip)/math.Abs(in) > 1e-6 {
		t.Fatalf("PMOS current %g is not the mirror of NMOS %g", ip, in)
	}
}

func TestMOSFETDrainSourceSwap(t *testing.T) {
	// Driving the "source" above the "drain" must conduct symmetrically.
	p := Default350()
	c := NewCircuit()
	d := c.Node("d")
	g := c.Node("g")
	c.AddVSource("VG", g, Ground, DC(3.3))
	c.AddVSource("VD", d, Ground, DC(-1.0)) // drain below source
	m := c.AddMOSFET("M1", d, g, Ground, Ground, p.NMOSParams(1e-6))
	s, err := OperatingPoint(c, nil)
	if err != nil {
		t.Fatalf("op: %v", err)
	}
	// Current must flow source->drain (negative drain current).
	if i := m.ChannelCurrent(s.Raw()); i >= 0 {
		t.Fatalf("expected reverse conduction, got %g", i)
	}
}

func buildInverter(t *testing.T, p *Process) (*Circuit, *VSource) {
	t.Helper()
	c := NewCircuit()
	vdd := c.Node("vdd")
	in := c.Node("in")
	out := c.Node("out")
	c.AddVSource("VDD", vdd, Ground, DC(p.VDD))
	vin := c.AddVSource("VIN", in, Ground, DC(0))
	c.AddMOSFET("MP", out, in, vdd, vdd, p.PMOSParams(p.WPUnit))
	c.AddMOSFET("MN", out, in, Ground, Ground, p.NMOSParams(p.WNUnit))
	return c, vin
}

func TestInverterVTC(t *testing.T) {
	p := Default350()
	c, vin := buildInverter(t, p)
	res, err := DCSweep(c, vin, 0, p.VDD, 0.05, nil)
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	out := res.V("out")
	if out[0] < p.VDD-0.01 {
		t.Fatalf("VOH %g, want ~%g", out[0], p.VDD)
	}
	if last := out[len(out)-1]; last > 0.05 {
		t.Fatalf("VOL %g, want ~0", last)
	}
	// The VTC must be non-increasing (within solver tolerance).
	for i := 1; i < len(out); i++ {
		if out[i] > out[i-1]+1e-3 {
			t.Fatalf("VTC not monotonic at %g V: %g -> %g", res.Values[i], out[i-1], out[i])
		}
	}
	// The switching threshold should be mid-rail-ish.
	mid := -1.0
	for i := 1; i < len(out); i++ {
		if out[i-1] >= p.VDD/2 && out[i] < p.VDD/2 {
			mid = res.Values[i]
			break
		}
	}
	if mid < 0.8 || mid > 2.5 {
		t.Fatalf("switching threshold %g V implausible", mid)
	}
}

func TestInverterTransient(t *testing.T) {
	p := Default350()
	c := NewCircuit()
	vdd := c.Node("vdd")
	in := c.Node("in")
	out := c.Node("out")
	c.AddVSource("VDD", vdd, Ground, DC(p.VDD))
	c.AddVSource("VIN", in, Ground, NewPWL(0, 0, 1e-9, 0, 1.05e-9, p.VDD))
	c.AddMOSFET("MP", out, in, vdd, vdd, p.PMOSParams(p.WPUnit))
	c.AddMOSFET("MN", out, in, Ground, Ground, p.NMOSParams(p.WNUnit))
	c.AddCapacitor("CL", out, Ground, 10e-15)
	res, err := Transient(c, 3e-9, 1e-12, nil)
	if err != nil {
		t.Fatalf("tran: %v", err)
	}
	vs := res.V("out")
	if vs[0] < p.VDD-0.05 {
		t.Fatalf("initial output %g, want ~VDD", vs[0])
	}
	if final := vs[len(vs)-1]; final > 0.05 {
		t.Fatalf("final output %g, want ~0", final)
	}
}

func TestPWLWaveform(t *testing.T) {
	w := NewPWL(0, 0, 1, 1, 2, -1)
	cases := []struct{ t, want float64 }{
		{-1, 0}, {0, 0}, {0.5, 0.5}, {1, 1}, {1.5, 0}, {2, -1}, {3, -1},
	}
	for _, cse := range cases {
		if got := w.At(cse.t); math.Abs(got-cse.want) > 1e-12 {
			t.Fatalf("PWL at %g = %g, want %g", cse.t, got, cse.want)
		}
	}
}

func TestPulseWaveform(t *testing.T) {
	w := &Pulse{V1: 0, V2: 3, Delay: 1, Rise: 1, Fall: 1, Width: 2, Period: 10}
	cases := []struct{ t, want float64 }{
		{0, 0}, {1, 0}, {1.5, 1.5}, {2, 3}, {3.9, 3}, {4.5, 1.5}, {6, 0},
		{11.5, 1.5}, // periodic repeat
	}
	for _, cse := range cases {
		if got := w.At(cse.t); math.Abs(got-cse.want) > 1e-9 {
			t.Fatalf("Pulse at %g = %g, want %g", cse.t, got, cse.want)
		}
	}
}

// TestQuickResistorLadder: random resistive ladders driven by one source —
// every node voltage must lie within the source range, and KCL must hold at
// the source (total current equals voltage over equivalent resistance > 0).
func TestQuickResistorLadder(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		c := NewCircuit()
		prev := c.Node("n0")
		vsrc := 1 + 9*rng.Float64()
		c.AddVSource("V", prev, Ground, DC(vsrc))
		for i := 1; i <= n; i++ {
			cur := c.Node("n" + string(rune('0'+i)))
			c.AddResistor("Rs"+string(rune('0'+i)), prev, cur, 100+1e4*rng.Float64())
			c.AddResistor("Rg"+string(rune('0'+i)), cur, Ground, 100+1e4*rng.Float64())
			prev = cur
		}
		s, err := OperatingPoint(c, nil)
		if err != nil {
			return false
		}
		for i := 1; i <= n; i++ {
			v := s.V("n" + string(rune('0'+i)))
			if v < -1e-9 || v > vsrc+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickPWLMonotoneSegments: PWL evaluation stays within the convex hull
// of its defining values.
func TestQuickPWLMonotoneSegments(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var tv []float64
		lo, hi := math.Inf(1), math.Inf(-1)
		tm := 0.0
		for i := 0; i < 5; i++ {
			tm += rng.Float64() + 0.01
			v := rng.NormFloat64() * 5
			tv = append(tv, tm, v)
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		w := NewPWL(tv...)
		for i := 0; i < 50; i++ {
			x := rng.Float64() * (tm + 1)
			v := w.At(x)
			if v < lo-1e-9 || v > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateDeviceNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate device name")
		}
	}()
	c := NewCircuit()
	a := c.Node("a")
	c.AddResistor("R1", a, Ground, 1)
	c.AddResistor("R1", a, Ground, 1)
}

func TestGroundAliases(t *testing.T) {
	c := NewCircuit()
	if c.Node("gnd") != Ground || c.Node("GND") != Ground || c.Node("0") != Ground {
		t.Fatal("ground aliases broken")
	}
}

func TestAdaptiveTransientMatchesFixed(t *testing.T) {
	// The adaptive stepper must agree with the fixed stepper on an RC
	// charging curve while taking far fewer steps over the flat tail.
	build := func() *Circuit {
		c := NewCircuit()
		in := c.Node("in")
		out := c.Node("out")
		c.AddVSource("V1", in, Ground, NewPWL(0, 0, 1e-9, 1))
		c.AddResistor("R1", in, out, 1e3)
		c.AddCapacitor("C1", out, Ground, 1e-9)
		return c
	}
	fixed, err := Transient(build(), 5e-6, 5e-9, nil)
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	opt.Adaptive = true
	opt.DVMax = 0.02
	adaptive, err := Transient(build(), 5e-6, 5e-9, opt)
	if err != nil {
		t.Fatal(err)
	}
	if adaptive.Len() >= fixed.Len() {
		t.Fatalf("adaptive took %d points vs fixed %d", adaptive.Len(), fixed.Len())
	}
	// Compare against the analytic curve.
	va := adaptive.V("out")
	worst := 0.0
	for i, tm := range adaptive.Times {
		if tm < 10e-9 {
			continue
		}
		want := 1 - math.Exp(-(tm-1e-9)/1e-6)
		if d := math.Abs(va[i] - want); d > worst {
			worst = d
		}
	}
	if worst > 2e-2 {
		t.Fatalf("adaptive transient max error %g", worst)
	}
}

func TestAdaptiveInverterDelayAgreesWithFixed(t *testing.T) {
	// Delay measurements must be step-control independent to within the
	// measurement tolerance.
	p := Default350()
	build := func() *Circuit {
		c := NewCircuit()
		vdd := c.Node("vdd")
		in := c.Node("in")
		out := c.Node("out")
		c.AddVSource("VDD", vdd, Ground, DC(p.VDD))
		c.AddVSource("VIN", in, Ground, NewPWL(0, 0, 0.5e-9, 0, 0.55e-9, p.VDD))
		c.AddMOSFET("MP", out, in, vdd, vdd, p.PMOSParams(p.WPUnit))
		c.AddMOSFET("MN", out, in, Ground, Ground, p.NMOSParams(p.WNUnit))
		c.AddCapacitor("CL", out, Ground, 10e-15)
		return c
	}
	cross := func(res *TranResult) float64 {
		vs := res.V("out")
		for i := 1; i < len(res.Times); i++ {
			if vs[i-1] >= p.VDD/2 && vs[i] < p.VDD/2 {
				f := (p.VDD/2 - vs[i-1]) / (vs[i] - vs[i-1])
				return res.Times[i-1] + f*(res.Times[i]-res.Times[i-1])
			}
		}
		return -1
	}
	fixed, err := Transient(build(), 2e-9, 1e-12, nil)
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	opt.Adaptive = true
	opt.DVMax = 0.05
	adaptive, err := Transient(build(), 2e-9, 1e-12, opt)
	if err != nil {
		t.Fatal(err)
	}
	tf, ta := cross(fixed), cross(adaptive)
	if tf < 0 || ta < 0 {
		t.Fatalf("missing crossings %g %g", tf, ta)
	}
	if math.Abs(tf-ta) > 2e-12 {
		t.Fatalf("delay disagreement: fixed %.1f ps vs adaptive %.1f ps", tf*1e12, ta*1e12)
	}
}

func TestChargeThroughRC(t *testing.T) {
	// Charging C=1nF to 1V through the source moves Q = C·ΔV = 1 nC.
	c := NewCircuit()
	in := c.Node("in")
	out := c.Node("out")
	v1 := c.AddVSource("V1", in, Ground, NewPWL(0, 0, 1e-9, 1))
	c.AddResistor("R1", in, out, 1e3)
	c.AddCapacitor("C1", out, Ground, 1e-9)
	res, err := Transient(c, 10e-6, 5e-9, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Branch current is negative while the source delivers charge.
	q := -res.ChargeThrough(v1, 0, 10e-6)
	if math.Abs(q-1e-9) > 2e-11 {
		t.Fatalf("delivered charge %.3g C, want 1e-9", q)
	}
	// A window before the edge moves (almost) nothing.
	if q0 := res.ChargeThrough(v1, 0, 0.5e-9); math.Abs(q0) > 1e-12 {
		t.Fatalf("pre-edge charge %.3g C, want ~0", q0)
	}
	// Sub-windows add up to the whole.
	qa := res.ChargeThrough(v1, 0, 3e-6)
	qb := res.ChargeThrough(v1, 3e-6, 10e-6)
	if math.Abs((qa+qb)-res.ChargeThrough(v1, 0, 10e-6)) > 1e-14 {
		t.Fatal("charge windows do not add up")
	}
}

func TestSourceCurrentSeries(t *testing.T) {
	c := NewCircuit()
	in := c.Node("in")
	v1 := c.AddVSource("V1", in, Ground, DC(2))
	c.AddResistor("R1", in, Ground, 1e3)
	res, err := Transient(c, 1e-8, 1e-9, nil)
	if err != nil {
		t.Fatal(err)
	}
	is := res.SourceCurrent(v1)
	if len(is) != res.Len() {
		t.Fatalf("series length %d vs %d", len(is), res.Len())
	}
	for _, i := range is {
		if math.Abs(i+2e-3) > 1e-6 {
			t.Fatalf("source current %g, want -2mA", i)
		}
	}
}
