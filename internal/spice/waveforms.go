package spice

import "sort"

// Waveform describes the time behaviour of an independent source.
type Waveform interface {
	// At returns the source value at time t (t=0 is used for DC analyses).
	At(t float64) float64
}

// DC is a constant waveform.
type DC float64

// At implements Waveform.
func (d DC) At(float64) float64 { return float64(d) }

// PWLPoint is one (time, value) corner of a piecewise-linear waveform.
type PWLPoint struct {
	T float64
	V float64
}

// PWL is a piecewise-linear waveform. Before the first point it holds the
// first value; after the last point it holds the last value.
type PWL struct {
	Points []PWLPoint
}

// NewPWL builds a PWL waveform from alternating time/value pairs, sorting
// by time. It panics on an odd argument count (a construction bug).
func NewPWL(tv ...float64) *PWL {
	if len(tv)%2 != 0 {
		panic("spice: NewPWL needs time/value pairs")
	}
	p := &PWL{}
	for i := 0; i < len(tv); i += 2 {
		p.Points = append(p.Points, PWLPoint{T: tv[i], V: tv[i+1]})
	}
	sort.Slice(p.Points, func(i, j int) bool { return p.Points[i].T < p.Points[j].T })
	return p
}

// At implements Waveform.
func (p *PWL) At(t float64) float64 {
	pts := p.Points
	if len(pts) == 0 {
		return 0
	}
	if t <= pts[0].T {
		return pts[0].V
	}
	if t >= pts[len(pts)-1].T {
		return pts[len(pts)-1].V
	}
	// Binary search for the segment containing t.
	i := sort.Search(len(pts), func(i int) bool { return pts[i].T > t }) - 1
	a, b := pts[i], pts[i+1]
	if b.T == a.T {
		return b.V
	}
	f := (t - a.T) / (b.T - a.T)
	return a.V + f*(b.V-a.V)
}

// Pulse is a SPICE-style periodic pulse waveform.
type Pulse struct {
	V1     float64 // initial value
	V2     float64 // pulsed value
	Delay  float64 // time of first edge start
	Rise   float64 // rise time
	Fall   float64 // fall time
	Width  float64 // pulse width (time at V2)
	Period float64 // repetition period (0 means single pulse)
}

// At implements Waveform.
func (p *Pulse) At(t float64) float64 {
	t -= p.Delay
	if t < 0 {
		return p.V1
	}
	if p.Period > 0 {
		n := int(t / p.Period)
		t -= float64(n) * p.Period
	}
	switch {
	case t < p.Rise:
		if p.Rise == 0 {
			return p.V2
		}
		return p.V1 + (p.V2-p.V1)*t/p.Rise
	case t < p.Rise+p.Width:
		return p.V2
	case t < p.Rise+p.Width+p.Fall:
		if p.Fall == 0 {
			return p.V1
		}
		return p.V2 + (p.V1-p.V2)*(t-p.Rise-p.Width)/p.Fall
	default:
		return p.V1
	}
}
