package store

import (
	"errors"
	"fmt"
)

// ErrNotFound reports a key with no artifact. Match with errors.Is.
var ErrNotFound = errors.New("store: artifact not found")

// ErrBadKey reports a key outside the store's key grammar (see Open).
var ErrBadKey = errors.New("store: invalid key")

// CorruptArtifactError reports an artifact that failed its integrity
// check on read — a torn write that survived a crash, a truncated or
// bit-flipped payload, or a mangled manifest header. The store never
// returns corrupt bytes: by the time this error is surfaced the file
// has been moved to the quarantine directory (Quarantined names its new
// path) so the next Put can rebuild the artifact cleanly and auditors
// can inspect the corpse.
type CorruptArtifactError struct {
	Key         string // the requested key
	Path        string // the object path that failed verification
	Quarantined string // where the corrupt file was moved ("" if the move itself failed)
	Reason      string // what the verifier saw
}

// Error implements error.
func (e *CorruptArtifactError) Error() string {
	return fmt.Sprintf("store: artifact %s corrupt: %s", e.Key, e.Reason)
}
