package store

import "errors"

// Failpoint names one instant in a durability-critical sequence where a
// crash would leave distinguishable on-disk state. The kill-injection
// harness (internal/jobs) arms a Hook that aborts at a chosen failpoint
// occurrence, simulating a process death at exactly that instant; the
// robustness contract is that recovery from every failpoint yields a
// final artifact byte-identical to an uninterrupted run.
type Failpoint string

// Store and journal failpoints, in write-path order. Each name states
// what IS on disk when a crash lands there.
const (
	// FailPutBeforeWrite: nothing of this Put is on disk yet.
	FailPutBeforeWrite Failpoint = "store/put/before-write"
	// FailPutTorn: the temp file holds a prefix of the encoded artifact
	// (a torn write); the final path is untouched.
	FailPutTorn Failpoint = "store/put/torn-write"
	// FailPutAfterWrite: the temp file is complete but not fsynced.
	FailPutAfterWrite Failpoint = "store/put/after-write"
	// FailPutAfterSync: the temp file is durable but not yet renamed.
	FailPutAfterSync Failpoint = "store/put/after-sync"
	// FailPutAfterRename: the object is visible under its final name but
	// the directory entry is not yet fsynced.
	FailPutAfterRename Failpoint = "store/put/after-rename"

	// FailJournalBeforeAppend: the record is not on disk.
	FailJournalBeforeAppend Failpoint = "store/journal/before-append"
	// FailJournalTorn: a prefix of the encoded record is on disk (torn
	// tail) — exactly what replay must tolerate and truncate.
	FailJournalTorn Failpoint = "store/journal/torn-write"
	// FailJournalAfterWrite: the record is written but not fsynced.
	FailJournalAfterWrite Failpoint = "store/journal/after-write"
	// FailJournalAfterSync: the record is durable.
	FailJournalAfterSync Failpoint = "store/journal/after-sync"
)

// Hook is a failpoint callback (tests only; production passes nil). It
// runs at every failpoint of the store or journal it was installed on;
// returning a non-nil error aborts the surrounding operation
// immediately, leaving the on-disk state exactly as a crash at that
// instant would — no cleanup, no further writes. The conventional abort
// value is ErrInjectedCrash.
//
// Hooks must be deterministic and race-clean: they are called from
// whatever goroutine performs the write.
type Hook func(Failpoint) error

// ErrInjectedCrash is the sentinel a Hook returns to simulate a process
// death at a failpoint. Callers that see it must stop dead: no recovery
// writes, no state transitions — the next Open over the same directory
// plays the part of the restarted process.
var ErrInjectedCrash = errors.New("store: injected crash")

// fire runs the hook, if any, at fp.
func fire(h Hook, fp Failpoint) error {
	if h == nil {
		return nil
	}
	return h(fp)
}
