package store

import (
	"bytes"
	"testing"
)

// FuzzStoreManifest fuzzes the two on-disk decoders — the artifact
// manifest and the journal record line — with the invariants the crash
// model depends on: decoders never panic on arbitrary bytes (every
// corrupt file must route to quarantine/truncation, not a crash loop),
// and encode→decode round-trips exactly for any valid key and payload.
func FuzzStoreManifest(f *testing.F) {
	f.Add([]byte("abc123"), []byte(`{"coverage":1}`+"\n"))
	f.Add([]byte("k-"), []byte{})
	f.Add([]byte("obdstore1 abc123 3 zz\nxyz"), []byte("obdj1 3 00000000 616263\n"))
	f.Add([]byte("obdstore1"), []byte("obdj1"))
	f.Add([]byte{0xff, 0x00, '\n'}, []byte{0xff, 0x00, '\n'})
	f.Fuzz(func(t *testing.T, keyBytes, payload []byte) {
		// Arbitrary bytes through both decoders: must not panic, and a
		// successful manifest decode must re-verify.
		if mkey, mpayload, reason := decodeManifest(keyBytes); reason == "" {
			if !validKey(mkey) {
				t.Fatalf("decodeManifest accepted invalid key %q", mkey)
			}
			reEnc := encodeManifest(mkey, mpayload)
			if !bytes.Equal(reEnc, keyBytes) {
				t.Fatalf("accepted manifest is not canonical: %q", keyBytes)
			}
		}
		decodeJournalRecord(bytes.TrimSuffix(keyBytes, []byte{'\n'})) //nolint:errcheck // must-not-panic probe
		decodeJournalRecord(payload)                                  //nolint:errcheck // must-not-panic probe

		// Round-trip: any valid key + arbitrary payload survives
		// encode→decode bit-exactly.
		key := string(keyBytes)
		if validKey(key) {
			mkey, got, reason := decodeManifest(encodeManifest(key, payload))
			if reason != "" || mkey != key || !bytes.Equal(got, payload) {
				t.Fatalf("manifest round-trip failed for key %q: reason=%q", key, reason)
			}
		}
		rec, err := decodeJournalRecord(bytes.TrimSuffix(encodeJournalRecord(payload), []byte{'\n'}))
		if err != nil || !bytes.Equal(rec, payload) {
			t.Fatalf("journal round-trip failed: %v", err)
		}
	})
}
