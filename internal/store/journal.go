package store

import (
	"bytes"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"os"
	"strconv"
	"sync"
)

// Journal is an append-only record log with per-record checksums and
// torn-tail recovery: the durability substrate of the job runtime's
// state machine. Each Append is one fsynced, self-delimiting line; a
// crash mid-append leaves a torn final line that the next OpenJournal
// detects, truncates, and ignores — every record before it replays
// intact. Records are opaque byte slices to the journal (internal/jobs
// stores canonical JSON).
//
// Record format (one line):
//
//	obdj1 <len> <crc32c-hex8> <payload-hex>\n
//
// The hex payload keeps records line-delimited whatever bytes the
// caller logs; crc32c catches torn and bit-flipped tails that still
// parse.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	path string
	hook Hook

	records   int64
	truncated int64 // bytes dropped by torn-tail recovery at open
}

const journalMagic = "obdj1"

// castagnoli is the CRC-32C table (same polynomial as iSCSI/ext4).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// encodeJournalRecord renders one record line.
func encodeJournalRecord(payload []byte) []byte {
	crc := crc32.Checksum(payload, castagnoli)
	return []byte(fmt.Sprintf("%s %d %08x %s\n", journalMagic, len(payload), crc, hex.EncodeToString(payload)))
}

// decodeJournalRecord parses one record line (without the trailing
// newline), verifying framing and checksum.
func decodeJournalRecord(line []byte) ([]byte, error) {
	fields := bytes.Split(line, []byte{' '})
	if len(fields) != 4 {
		return nil, fmt.Errorf("journal record has %d fields, want 4", len(fields))
	}
	if string(fields[0]) != journalMagic {
		return nil, fmt.Errorf("bad journal magic %q", fields[0])
	}
	n, err := strconv.Atoi(string(fields[1]))
	if err != nil || n < 0 {
		return nil, fmt.Errorf("bad journal record length %q", fields[1])
	}
	wantCRC, err := strconv.ParseUint(string(fields[2]), 16, 32)
	if err != nil || len(fields[2]) != 8 {
		return nil, fmt.Errorf("bad journal record crc %q", fields[2])
	}
	payload, err := hex.DecodeString(string(fields[3]))
	if err != nil {
		return nil, fmt.Errorf("bad journal record payload: %v", err)
	}
	if len(payload) != n {
		return nil, fmt.Errorf("journal record payload is %d bytes, header says %d", len(payload), n)
	}
	if got := crc32.Checksum(payload, castagnoli); got != uint32(wantCRC) {
		return nil, fmt.Errorf("journal record crc %08x, header says %08x", got, wantCRC)
	}
	return payload, nil
}

// OpenJournal opens (creating if needed) the journal at path, replays
// every intact record, and truncates a torn tail left by a crash
// mid-append. The returned records are in append order. hook, when
// non-nil, receives the append-path failpoints (tests only).
func OpenJournal(path string, hook Hook) (*Journal, [][]byte, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("store: opening journal %s: %w", path, err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		f.Close() //nolint:errcheck // read error is the one to report
		return nil, nil, fmt.Errorf("store: opening journal %s: %w", path, err)
	}
	j := &Journal{f: f, path: path, hook: hook}
	var records [][]byte
	good := 0 // byte offset of the end of the last intact record
	for off := 0; off < len(b); {
		nl := bytes.IndexByte(b[off:], '\n')
		if nl < 0 {
			break // torn tail: no newline
		}
		payload, derr := decodeJournalRecord(b[off : off+nl])
		if derr != nil {
			break // torn or corrupt: drop this record and everything after
		}
		records = append(records, payload)
		off += nl + 1
		good = off
	}
	if good < len(b) {
		j.truncated = int64(len(b) - good)
		if err := f.Truncate(int64(good)); err != nil {
			f.Close() //nolint:errcheck // truncate error is the one to report
			return nil, nil, fmt.Errorf("store: recovering journal %s: %w", path, err)
		}
	}
	if _, err := f.Seek(int64(good), 0); err != nil {
		f.Close() //nolint:errcheck // seek error is the one to report
		return nil, nil, fmt.Errorf("store: recovering journal %s: %w", path, err)
	}
	j.records = int64(len(records))
	return j, records, nil
}

// Append durably logs one record: the record line is written and
// fsynced before Append returns nil.
func (j *Journal) Append(payload []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := fire(j.hook, FailJournalBeforeAppend); err != nil {
		return err
	}
	line := encodeJournalRecord(payload)
	if err := fire(j.hook, FailJournalTorn); err != nil {
		j.f.Write(line[:len(line)/2]) //nolint:errcheck // simulating a torn append
		return err
	}
	if _, err := j.f.Write(line); err != nil {
		return fmt.Errorf("store: journal append: %w", err)
	}
	if err := fire(j.hook, FailJournalAfterWrite); err != nil {
		return err
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("store: journal append: %w", err)
	}
	j.records++
	return fire(j.hook, FailJournalAfterSync)
}

// Stats reports the record count (replayed plus appended) and the bytes
// truncated by torn-tail recovery at open.
func (j *Journal) Stats() (records, truncatedBytes int64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.records, j.truncated
}

// Close closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	if err != nil {
		return fmt.Errorf("store: closing journal: %w", err)
	}
	return nil
}
