package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"
)

// Artifact file format: a single self-describing header line followed by
// the raw payload bytes. The header carries the logical key (so a file
// is meaningful without its directory context), the payload length (so
// truncation is detectable before hashing) and the payload's SHA-256
// (so any bit flip is detectable). Every read re-verifies all three;
// an artifact that fails any check is quarantined, never served.
//
//	obdstore1 <key> <len> <sha256-hex>\n
//	<payload bytes>

const manifestMagic = "obdstore1"

// maxManifestHeader bounds the header-line scan so a corrupt file cannot
// make the decoder walk an arbitrarily long prefix looking for '\n'.
const maxManifestHeader = 1 + len(manifestMagic) + maxKeyLen + 20 + 64 + 8

// encodeManifest renders the artifact file bytes for (key, payload).
// key must already be valid (see validKey).
func encodeManifest(key string, payload []byte) []byte {
	sum := sha256.Sum256(payload)
	head := fmt.Sprintf("%s %s %d %s\n", manifestMagic, key, len(payload), hex.EncodeToString(sum[:]))
	out := make([]byte, 0, len(head)+len(payload))
	out = append(out, head...)
	return append(out, payload...)
}

// decodeManifest parses and verifies an artifact file. On failure the
// reason names the first check that failed; key is returned when the
// header parsed far enough to recover it (for quarantine reporting).
func decodeManifest(b []byte) (key string, payload []byte, reason string) {
	limit := len(b)
	if limit > maxManifestHeader {
		limit = maxManifestHeader
	}
	nl := bytes.IndexByte(b[:limit], '\n')
	if nl < 0 {
		return "", nil, "missing manifest header"
	}
	fields := bytes.Split(b[:nl], []byte{' '})
	if len(fields) != 4 {
		return "", nil, fmt.Sprintf("manifest header has %d fields, want 4", len(fields))
	}
	if string(fields[0]) != manifestMagic {
		return "", nil, fmt.Sprintf("bad magic %q", fields[0])
	}
	key = string(fields[1])
	if !validKey(key) {
		return "", nil, fmt.Sprintf("invalid key %q in manifest", key)
	}
	n, err := strconv.Atoi(string(fields[2]))
	if err != nil || n < 0 {
		return key, nil, fmt.Sprintf("bad payload length %q", fields[2])
	}
	want, err := hex.DecodeString(string(fields[3]))
	if err != nil || len(want) != sha256.Size {
		return key, nil, fmt.Sprintf("bad digest %q", fields[3])
	}
	payload = b[nl+1:]
	if len(payload) != n {
		return key, nil, fmt.Sprintf("payload is %d bytes, manifest says %d", len(payload), n)
	}
	got := sha256.Sum256(payload)
	if !bytes.Equal(got[:], want) {
		return key, nil, fmt.Sprintf("payload digest %x, manifest says %x", got, want)
	}
	return key, payload, ""
}
