// Package store is a crash-safe, content-verified artifact store: the
// persistence layer under the async job runtime (internal/jobs) and the
// cross-restart response cache of the serving layer (internal/serve).
//
// Artifacts are small immutable blobs — response bodies, job
// checkpoints, generated test sets — keyed by a caller-chosen string
// (in practice the SHA-256 digest of (logic.Fingerprint, canonical
// params), so identical requests share one artifact across process
// restarts). The durability discipline is write-temp + fsync +
// atomic-rename + directory fsync: a crash at any instant leaves either
// the old object, the new object, or inert debris in tmp/ that the next
// Open sweeps. Every read re-verifies the manifest (key, length,
// SHA-256); an artifact that fails verification is moved to
// quarantine/ and reported as a typed *CorruptArtifactError, so a torn
// or bit-rotted file is recomputed, never served.
//
// The package also provides Journal, an append-only checksummed record
// log with torn-tail recovery, used by internal/jobs for its state
// machine. Both carry failpoint hooks (failpoint.go) so the
// kill-injection harness can simulate a crash at every durability
// boundary. See DESIGN.md §13.
package store

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// maxKeyLen bounds artifact keys.
const maxKeyLen = 128

// validKey reports whether key fits the store's key grammar: 2..128
// characters of [A-Za-z0-9._-], not starting with a dot. The grammar is
// filename- and manifest-safe by construction (no separators, spaces or
// newlines); the two-character minimum feeds the objects/ fan-out.
func validKey(key string) bool {
	if len(key) < 2 || len(key) > maxKeyLen || key[0] == '.' {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '.' || c == '_' || c == '-':
		default:
			return false
		}
	}
	return true
}

// Store is a crash-safe artifact store rooted at a directory. It is safe
// for concurrent use by multiple goroutines; concurrent Puts of the same
// key race benignly (both write a complete object, the later rename
// wins, and — keys being content-derived — both wrote identical bytes).
type Store struct {
	root string
	hook Hook

	seq atomic.Uint64 // temp/quarantine filename uniqueness within the process

	mu          sync.Mutex // guards the gauges below
	objects     int
	bytes       int64
	quarantined int64
}

// Open creates (if needed) and opens a store rooted at dir, sweeping any
// temp-file debris a previous crash left behind. hook, when non-nil,
// receives every durability failpoint (tests only; see Hook).
func Open(dir string, hook Hook) (*Store, error) {
	s := &Store{root: dir, hook: hook}
	for _, d := range []string{dir, s.objectsDir(), s.tmpDir(), s.quarantineDir()} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("store: opening %s: %w", dir, err)
		}
	}
	// Crash debris: anything in tmp/ was never renamed into place and is
	// invisible to readers; remove it so it cannot accumulate.
	ents, err := os.ReadDir(s.tmpDir())
	if err != nil {
		return nil, fmt.Errorf("store: opening %s: %w", dir, err)
	}
	for _, e := range ents {
		os.Remove(filepath.Join(s.tmpDir(), e.Name())) //nolint:errcheck // best-effort sweep
	}
	// Prime the object/byte gauges from the existing population.
	err = filepath.WalkDir(s.objectsDir(), func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		if info, ierr := d.Info(); ierr == nil {
			s.objects++
			s.bytes += info.Size()
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("store: opening %s: %w", dir, err)
	}
	return s, nil
}

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

func (s *Store) objectsDir() string    { return filepath.Join(s.root, "objects") }
func (s *Store) tmpDir() string        { return filepath.Join(s.root, "tmp") }
func (s *Store) quarantineDir() string { return filepath.Join(s.root, "quarantine") }

// objectPath fans keys out over 256 subdirectories by their first two
// characters (keys are typically hex digests, so this spreads evenly).
func (s *Store) objectPath(key string) string {
	return filepath.Join(s.objectsDir(), key[:2], key)
}

// Put durably stores payload under key, replacing any existing artifact
// atomically. The sequence is write-temp, fsync, rename, directory
// fsync; a crash at any point leaves either the old object or the new
// one, never a torn file at the final path.
func (s *Store) Put(key string, payload []byte) error {
	if !validKey(key) {
		return fmt.Errorf("store: put %q: %w", key, ErrBadKey)
	}
	final := s.objectPath(key)
	if err := os.MkdirAll(filepath.Dir(final), 0o755); err != nil {
		return fmt.Errorf("store: put %s: %w", key, err)
	}
	if err := fire(s.hook, FailPutBeforeWrite); err != nil {
		return err
	}
	enc := encodeManifest(key, payload)
	tmp := filepath.Join(s.tmpDir(), fmt.Sprintf("%s.%d.%d", key, os.Getpid(), s.seq.Add(1)))
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("store: put %s: %w", key, err)
	}
	// A failpoint abort must leave the file exactly as written so far —
	// no cleanup — so the error paths distinguish injected crashes.
	if err := fire(s.hook, FailPutTorn); err != nil {
		f.Write(enc[:len(enc)/2]) //nolint:errcheck // simulating a torn write
		f.Close()                 //nolint:errcheck // crash simulation keeps the torn file
		return err
	}
	if _, err := f.Write(enc); err != nil {
		f.Close()      //nolint:errcheck // write error is the one to report
		os.Remove(tmp) //nolint:errcheck // best-effort cleanup
		return fmt.Errorf("store: put %s: %w", key, err)
	}
	if err := fire(s.hook, FailPutAfterWrite); err != nil {
		f.Close() //nolint:errcheck // crash simulation
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()      //nolint:errcheck // sync error is the one to report
		os.Remove(tmp) //nolint:errcheck // best-effort cleanup
		return fmt.Errorf("store: put %s: %w", key, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp) //nolint:errcheck // best-effort cleanup
		return fmt.Errorf("store: put %s: %w", key, err)
	}
	if err := fire(s.hook, FailPutAfterSync); err != nil {
		return err
	}
	// The gauge update and rename share the mutex so concurrent Puts of
	// the same key cannot double-count the object.
	s.mu.Lock()
	var oldSize int64
	existed := false
	if info, err := os.Stat(final); err == nil {
		existed, oldSize = true, info.Size()
	}
	if err := os.Rename(tmp, final); err != nil {
		s.mu.Unlock()
		os.Remove(tmp) //nolint:errcheck // best-effort cleanup
		return fmt.Errorf("store: put %s: %w", key, err)
	}
	if existed {
		s.bytes += int64(len(enc)) - oldSize
	} else {
		s.objects++
		s.bytes += int64(len(enc))
	}
	s.mu.Unlock()
	if err := fire(s.hook, FailPutAfterRename); err != nil {
		return err
	}
	if err := syncDir(filepath.Dir(final)); err != nil {
		return fmt.Errorf("store: put %s: %w", key, err)
	}
	return nil
}

// Get returns the verified payload stored under key. A missing artifact
// is ErrNotFound; one that fails verification is quarantined and
// reported as a *CorruptArtifactError — corrupt bytes are never
// returned.
func (s *Store) Get(key string) ([]byte, error) {
	if !validKey(key) {
		return nil, fmt.Errorf("store: get %q: %w", key, ErrBadKey)
	}
	path := s.objectPath(key)
	b, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("store: get %s: %w", key, ErrNotFound)
	}
	if err != nil {
		return nil, fmt.Errorf("store: get %s: %w", key, err)
	}
	mkey, payload, reason := decodeManifest(b)
	if reason == "" && mkey != key {
		reason = fmt.Sprintf("manifest key %q under object name %q", mkey, key)
	}
	if reason != "" {
		return nil, s.quarantine(key, path, int64(len(b)), reason)
	}
	return payload, nil
}

// Has reports whether an object file exists under key (without
// verifying its content — use Get for verified reads).
func (s *Store) Has(key string) bool {
	if !validKey(key) {
		return false
	}
	_, err := os.Stat(s.objectPath(key))
	return err == nil
}

// Delete removes the artifact under key. Deleting a missing key is a
// no-op.
func (s *Store) Delete(key string) error {
	if !validKey(key) {
		return fmt.Errorf("store: delete %q: %w", key, ErrBadKey)
	}
	path := s.objectPath(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	info, err := os.Stat(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: delete %s: %w", key, err)
	}
	if err := os.Remove(path); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("store: delete %s: %w", key, err)
	}
	s.objects--
	s.bytes -= info.Size()
	return nil
}

// quarantine moves a corrupt object out of the readable namespace and
// builds the typed error. The move uses a unique name so repeated
// corruption of the same key cannot collide.
func (s *Store) quarantine(key, path string, size int64, reason string) error {
	dst := filepath.Join(s.quarantineDir(), fmt.Sprintf("%s.%d.%d", key, os.Getpid(), s.seq.Add(1)))
	cerr := &CorruptArtifactError{Key: key, Path: path, Reason: reason}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := os.Rename(path, dst); err == nil {
		cerr.Quarantined = dst
		s.objects--
		s.bytes -= size
		s.quarantined++
	} else if errors.Is(err, fs.ErrNotExist) {
		// A concurrent reader already quarantined it; nothing to move.
		s.objects--
		s.bytes -= size
	}
	return cerr
}

// Stats reports the live gauges: verified-namespace object count and
// byte total, and the number of artifacts quarantined since Open.
func (s *Store) Stats() (objects int, bytes int64, quarantined int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.objects, s.bytes, s.quarantined
}

// syncDir fsyncs a directory so a preceding rename is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}
