package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func openTest(t *testing.T, hook Hook) *Store {
	t.Helper()
	s, err := Open(t.TempDir(), hook)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStorePutGetRoundTrip(t *testing.T) {
	s := openTest(t, nil)
	payload := []byte(`{"answer":42}` + "\n")
	if err := s.Put("abc123", payload); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("abc123")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("got %q, want %q", got, payload)
	}
	if !s.Has("abc123") || s.Has("zz-missing") {
		t.Fatal("Has disagrees with Put")
	}
	objects, bb, q := s.Stats()
	if objects != 1 || bb <= int64(len(payload)) || q != 0 {
		t.Fatalf("stats = (%d, %d, %d)", objects, bb, q)
	}
	// Overwrite is atomic and idempotent.
	if err := s.Put("abc123", payload); err != nil {
		t.Fatal(err)
	}
	if objects, _, _ = s.Stats(); objects != 1 {
		t.Fatalf("objects after overwrite = %d, want 1", objects)
	}
}

func TestStoreGetMissingAndBadKeys(t *testing.T) {
	s := openTest(t, nil)
	if _, err := s.Get("no-such-key"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing key: %v, want ErrNotFound", err)
	}
	for _, key := range []string{"", "x", ".hidden", "sp ace", "new\nline", "sla/sh", string(make([]byte, 200))} {
		if err := s.Put(key, []byte("x")); !errors.Is(err, ErrBadKey) {
			t.Fatalf("Put(%q): %v, want ErrBadKey", key, err)
		}
		if _, err := s.Get(key); !errors.Is(err, ErrBadKey) {
			t.Fatalf("Get(%q): %v, want ErrBadKey", key, err)
		}
	}
}

func TestStoreDelete(t *testing.T) {
	s := openTest(t, nil)
	if err := s.Put("k1", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("k1"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("k1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("after delete: %v, want ErrNotFound", err)
	}
	if err := s.Delete("k1"); err != nil {
		t.Fatalf("double delete: %v", err)
	}
	if objects, bb, _ := s.Stats(); objects != 0 || bb != 0 {
		t.Fatalf("stats after delete = (%d, %d)", objects, bb)
	}
}

// TestStoreCorruptionQuarantined covers the never-serve-a-bad-digest
// contract: truncation, bit flips and manifest mangling are all
// detected, quarantined, and reported as *CorruptArtifactError; after
// recompute (a fresh Put) the key serves clean bytes again.
func TestStoreCorruptionQuarantined(t *testing.T) {
	payload := []byte("the artifact payload bytes")
	corruptions := []struct {
		name string
		mut  func(b []byte) []byte
	}{
		{"truncated-payload", func(b []byte) []byte { return b[:len(b)-3] }},
		{"flipped-payload-bit", func(b []byte) []byte { b[len(b)-1] ^= 1; return b }},
		{"flipped-digest", func(b []byte) []byte { b[bytes.IndexByte(b, '\n')-1] ^= 1; return b }},
		{"mangled-manifest", func(b []byte) []byte { return append([]byte("garbage header\n"), b...) }},
		{"empty-file", func(b []byte) []byte { return nil }},
		{"wrong-key", func(b []byte) []byte { return bytes.Replace(b, []byte(" k-corrupt "), []byte(" k-someone "), 1) }},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			s := openTest(t, nil)
			if err := s.Put("k-corrupt", payload); err != nil {
				t.Fatal(err)
			}
			path := s.objectPath("k-corrupt")
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.mut(b), 0o644); err != nil {
				t.Fatal(err)
			}
			_, err = s.Get("k-corrupt")
			var ce *CorruptArtifactError
			if !errors.As(err, &ce) {
				t.Fatalf("Get on corrupt artifact: %v, want *CorruptArtifactError", err)
			}
			if ce.Key != "k-corrupt" || ce.Reason == "" || ce.Quarantined == "" {
				t.Fatalf("corrupt error %+v", ce)
			}
			if _, err := os.Stat(ce.Quarantined); err != nil {
				t.Fatalf("quarantined file missing: %v", err)
			}
			// The bad object is out of the namespace: the key now reads as
			// missing, and a recompute serves clean bytes.
			if _, err := s.Get("k-corrupt"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("after quarantine: %v, want ErrNotFound", err)
			}
			if _, _, q := s.Stats(); q != 1 {
				t.Fatalf("quarantined gauge = %d, want 1", q)
			}
			if err := s.Put("k-corrupt", payload); err != nil {
				t.Fatal(err)
			}
			got, err := s.Get("k-corrupt")
			if err != nil || !bytes.Equal(got, payload) {
				t.Fatalf("recomputed read = %q, %v", got, err)
			}
		})
	}
}

// TestStoreConcurrentSameKey is the write-race contract: many goroutines
// Put the same key concurrently, exactly one object results, and every
// subsequent read returns identical verified bytes. Run under -race.
func TestStoreConcurrentSameKey(t *testing.T) {
	s := openTest(t, nil)
	payload := bytes.Repeat([]byte("deterministic bytes "), 64)
	const writers = 8
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if err := s.Put("contended-key", payload); err != nil {
					errs[w] = err
					return
				}
				if got, err := s.Get("contended-key"); err != nil || !bytes.Equal(got, payload) {
					errs[w] = fmt.Errorf("read-back mismatch: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", w, err)
		}
	}
	got, err := s.Get("contended-key")
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("final read: %v", err)
	}
	if objects, _, _ := s.Stats(); objects != 1 {
		t.Fatalf("objects = %d, want 1", objects)
	}
}

// TestStoreCrashDebrisSwept arms the torn-write failpoint, crashes a
// Put, and checks that the torn temp file is invisible to readers and
// swept by the next Open.
func TestStoreCrashDebrisSwept(t *testing.T) {
	dir := t.TempDir()
	crash := func(fp Failpoint) error {
		if fp == FailPutTorn {
			return ErrInjectedCrash
		}
		return nil
	}
	s, err := Open(dir, crash)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("victim-key", []byte("payload")); !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("Put under torn failpoint: %v", err)
	}
	ents, err := os.ReadDir(filepath.Join(dir, "tmp"))
	if err != nil || len(ents) != 1 {
		t.Fatalf("tmp debris = %d files (%v), want 1", len(ents), err)
	}
	// Invisible to readers, even on the crashed handle.
	if _, err := s.Get("victim-key"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("torn temp visible: %v", err)
	}
	// The restarted process sweeps it.
	s2, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	ents, err = os.ReadDir(filepath.Join(dir, "tmp"))
	if err != nil || len(ents) != 0 {
		t.Fatalf("tmp debris after reopen = %d files (%v), want 0", len(ents), err)
	}
	if err := s2.Put("victim-key", []byte("payload")); err != nil {
		t.Fatal(err)
	}
}

func TestJournalAppendReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	j, records, err := OpenJournal(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(records))
	}
	want := [][]byte{[]byte(`{"op":"submit"}`), []byte(`{"op":"state"}`), {0, 1, 2, 0xff}}
	for _, r := range want {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, records, err = OpenJournal(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(records), len(want))
	}
	for i := range want {
		if !bytes.Equal(records[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, records[i], want[i])
		}
	}
}

// TestJournalTornTail appends records, then simulates every flavor of
// torn tail; replay must recover exactly the intact prefix and truncate
// the rest so subsequent appends land on a clean boundary.
func TestJournalTornTail(t *testing.T) {
	tails := []struct {
		name string
		tail string
	}{
		{"half-line", "obdj1 13 00000000 6162"},
		{"no-newline-garbage", "garbage"},
		{"bad-crc", "obdj1 2 00000000 6162\n"},
		{"bad-magic", "nope 2 abcdef01 6162\n"},
	}
	for _, tc := range tails {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "journal")
			j, _, err := OpenJournal(path, nil)
			if err != nil {
				t.Fatal(err)
			}
			if err := j.Append([]byte("first")); err != nil {
				t.Fatal(err)
			}
			if err := j.Append([]byte("second")); err != nil {
				t.Fatal(err)
			}
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}
			f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.WriteString(tc.tail); err != nil {
				t.Fatal(err)
			}
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}
			j2, records, err := OpenJournal(path, nil)
			if err != nil {
				t.Fatal(err)
			}
			if len(records) != 2 || string(records[0]) != "first" || string(records[1]) != "second" {
				t.Fatalf("replayed %q", records)
			}
			if _, truncated := j2.Stats(); truncated == 0 {
				t.Fatal("torn tail not accounted")
			}
			// Appends after recovery land on a clean boundary.
			if err := j2.Append([]byte("third")); err != nil {
				t.Fatal(err)
			}
			if err := j2.Close(); err != nil {
				t.Fatal(err)
			}
			_, records, err = OpenJournal(path, nil)
			if err != nil {
				t.Fatal(err)
			}
			if len(records) != 3 || string(records[2]) != "third" {
				t.Fatalf("post-recovery replay %q", records)
			}
		})
	}
}

// TestJournalTornAppendFailpoint drives the torn-append failpoint end to
// end: the crash leaves a half-written line, and replay recovers the
// prefix.
func TestJournalTornAppendFailpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal")
	crash := func(fp Failpoint) error {
		if fp == FailJournalTorn {
			return ErrInjectedCrash
		}
		return nil
	}
	j, _, err := OpenJournal(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append([]byte("durable")); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j, _, err = OpenJournal(path, crash)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append([]byte("torn")); !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("append under torn failpoint: %v", err)
	}
	// The crashed process is abandoned; the restart replays the prefix.
	_, records, err := OpenJournal(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 1 || string(records[0]) != "durable" {
		t.Fatalf("replayed %q", records)
	}
}
