// Package timing is an event-driven gate-level timing simulator with
// transport delays. It exists for the paper's Section 4.2 discussion: an
// OBD defect manifests as extra transition delay at one gate, so whether a
// two-pattern test detects it depends on when the outputs are captured —
// "the detection of this fault may necessitate output capture earlier than
// the designated clock frequency". The simulator propagates a two-pattern
// stimulus through a logic circuit, adds a per-fault delay penalty at the
// defective gate, and reports each net's waveform so a capture-time sweep
// can be evaluated exactly.
package timing

import (
	"container/heap"
	"fmt"
	"sort"

	"gobd/internal/logic"
)

// DelayModel assigns rise/fall propagation delays per gate type.
type DelayModel struct {
	Rise map[logic.GateType]float64
	Fall map[logic.GateType]float64
}

// DefaultDelays returns a delay model loosely calibrated against the
// analog cell library (inverters ≈ 35 ps, NAND/NOR ≈ 55/65 ps): only
// ratios matter for the capture-window experiments.
func DefaultDelays() *DelayModel {
	return &DelayModel{
		Rise: map[logic.GateType]float64{
			logic.Inv: 35e-12, logic.Buf: 35e-12,
			logic.Nand: 60e-12, logic.Nor: 75e-12,
			logic.And: 95e-12, logic.Or: 110e-12,
			logic.Xor: 120e-12, logic.Xnor: 120e-12,
			logic.Aoi21: 80e-12, logic.Oai21: 80e-12,
		},
		Fall: map[logic.GateType]float64{
			logic.Inv: 30e-12, logic.Buf: 30e-12,
			logic.Nand: 55e-12, logic.Nor: 60e-12,
			logic.And: 90e-12, logic.Or: 100e-12,
			logic.Xor: 115e-12, logic.Xnor: 115e-12,
			logic.Aoi21: 75e-12, logic.Oai21: 75e-12,
		},
	}
}

// Delay returns the propagation delay of gate g for an output edge in the
// given direction.
func (m *DelayModel) Delay(g *logic.Gate, rising bool) (float64, error) {
	tbl := m.Fall
	if rising {
		tbl = m.Rise
	}
	d, ok := tbl[g.Type]
	if !ok {
		return 0, fmt.Errorf("timing: no delay for gate type %v", g.Type)
	}
	return d, nil
}

// Penalty is extra delay injected at one gate's output in one transition
// direction — the gate-level image of an OBD defect at a given breakdown
// stage (derived from the Table 1 analog measurements).
type Penalty struct {
	GateName string
	Rising   bool    // direction that is slowed
	Extra    float64 // additional seconds; use Stuck for hard breakdown
	Stuck    bool    // the slowed transition never completes
}

// Edge is one value change on a net.
type Edge struct {
	T float64
	V logic.Value
}

// Trace is the result of a timing simulation: per-net waveforms starting
// from the settled first-pattern state at t=0⁻.
type Trace struct {
	Initial map[string]logic.Value
	Edges   map[string][]Edge
}

// At returns the value of a net at time t (edges are effective at their
// timestamp).
func (tr *Trace) At(net string, t float64) logic.Value {
	v := tr.Initial[net]
	for _, e := range tr.Edges[net] {
		if e.T > t {
			break
		}
		v = e.V
	}
	return v
}

// SettleTime returns the time of the last edge anywhere in the trace.
func (tr *Trace) SettleTime() float64 {
	last := 0.0
	for _, es := range tr.Edges {
		if n := len(es); n > 0 && es[n-1].T > last {
			last = es[n-1].T
		}
	}
	return last
}

// event is a scheduled net value change.
type event struct {
	t   float64
	seq int // tie-break for determinism
	net string
	v   logic.Value
}

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].t != q[j].t {
		return q[i].t < q[j].t
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// Simulator runs two-pattern timing simulations over one circuit.
type Simulator struct {
	C  *logic.Circuit
	DM *DelayModel
}

// New creates a simulator (the circuit must validate).
func New(c *logic.Circuit, dm *DelayModel) (*Simulator, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if dm == nil {
		dm = DefaultDelays()
	}
	for _, g := range c.Gates {
		if _, err := dm.Delay(g, true); err != nil {
			return nil, err
		}
	}
	return &Simulator{C: c, DM: dm}, nil
}

// Run simulates: the circuit settles under v1 (taken as the state at
// t=0⁻), the inputs change to v2 at t=0, and events propagate with
// transport delays. penalties (optional) add per-gate directional delay.
// Both patterns must be complete.
func (s *Simulator) Run(v1, v2 map[string]logic.Value, penalties []Penalty) (*Trace, error) {
	for _, in := range s.C.Inputs {
		a, okA := v1[in]
		b, okB := v2[in]
		if !okA || !okB || !a.IsKnown() || !b.IsKnown() {
			return nil, fmt.Errorf("timing: input %s not fully specified", in)
		}
	}
	pen := make(map[string]Penalty, len(penalties))
	for _, p := range penalties {
		if s.C.Driver(p.GateName) == nil && !s.hasGate(p.GateName) {
			return nil, fmt.Errorf("timing: penalty names unknown gate %q", p.GateName)
		}
		pen[p.GateName] = p
	}
	init := s.C.Eval(v1, nil)
	tr := &Trace{Initial: init, Edges: make(map[string][]Edge)}
	cur := make(map[string]logic.Value, len(init))
	for k, v := range init {
		cur[k] = v
	}
	// Inertial-delay scheduling: at most one pending (unapplied) event per
	// net. When a gate re-evaluates, any in-flight event on its output is
	// superseded — a pulse shorter than the gate delay is filtered, which
	// is exactly the inertial semantics.
	var q eventQueue
	seq := 0
	pending := make(map[string]int) // net -> seq of its live pending event
	push := func(t float64, net string, v logic.Value) {
		pending[net] = seq
		heap.Push(&q, event{t: t, seq: seq, net: net, v: v})
		seq++
	}
	cancel := func(net string) { delete(pending, net) }
	for _, in := range s.C.Inputs {
		if v2[in] != v1[in] {
			push(0, in, v2[in])
		}
	}
	const maxEvents = 1 << 20
	processed := 0
	buf := make([]logic.Value, 0, 4)
	for q.Len() > 0 {
		e := heap.Pop(&q).(event)
		if live, ok := pending[e.net]; !ok || live != e.seq {
			continue // superseded
		}
		delete(pending, e.net)
		if processed++; processed > maxEvents {
			return nil, fmt.Errorf("timing: event budget exceeded (oscillating circuit?)")
		}
		if cur[e.net] == e.v {
			continue
		}
		cur[e.net] = e.v
		tr.Edges[e.net] = append(tr.Edges[e.net], Edge{T: e.t, V: e.v})
		for _, g := range s.C.Fanout(e.net) {
			buf = buf[:0]
			for _, in := range g.Inputs {
				buf = append(buf, cur[in])
			}
			nv := g.Eval(buf)
			if nv == cur[g.Output] {
				// The output is already right: filter any in-flight pulse.
				cancel(g.Output)
				continue
			}
			rising := nv == logic.One
			d, err := s.DM.Delay(g, rising)
			if err != nil {
				return nil, err
			}
			if p, ok := pen[g.Name]; ok && p.Rising == rising {
				if p.Stuck {
					cancel(g.Output) // the transition never happens
					continue
				}
				d += p.Extra
			}
			push(e.t+d, g.Output, nv)
		}
	}
	// Heap pops are time-ordered; keep the per-net invariant explicit.
	for net := range tr.Edges {
		es := tr.Edges[net]
		sort.Slice(es, func(i, j int) bool { return es[i].T < es[j].T })
	}
	return tr, nil
}

func (s *Simulator) hasGate(name string) bool {
	for _, g := range s.C.Gates {
		if g.Name == name {
			return true
		}
	}
	return false
}

// CriticalPathDelay returns the worst settle time over a set of two-pattern
// stimuli (the designed capture reference for those tests).
func (s *Simulator) CriticalPathDelay(stimuli [][2]map[string]logic.Value) (float64, error) {
	worst := 0.0
	for _, st := range stimuli {
		tr, err := s.Run(st[0], st[1], nil)
		if err != nil {
			return 0, err
		}
		if t := tr.SettleTime(); t > worst {
			worst = t
		}
	}
	return worst, nil
}

// DetectsAt reports whether capturing the primary outputs at time tCapture
// distinguishes the faulty trace from the good trace.
func DetectsAt(c *logic.Circuit, good, faulty *Trace, tCapture float64) bool {
	for _, po := range c.Outputs {
		g := good.At(po, tCapture)
		f := faulty.At(po, tCapture)
		if g.IsKnown() && f.IsKnown() && g != f {
			return true
		}
	}
	return false
}
