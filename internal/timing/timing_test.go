package timing

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gobd/internal/logic"
)

func mustParse(t *testing.T, src string) *logic.Circuit {
	t.Helper()
	c, err := logic.ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func pat(c *logic.Circuit, bits ...logic.Value) map[string]logic.Value {
	m := make(map[string]logic.Value, len(c.Inputs))
	for i, in := range c.Inputs {
		m[in] = bits[i]
	}
	return m
}

func TestInverterChainArrival(t *testing.T) {
	c := mustParse(t, `circuit chain
input a
output y
inv g1 n1 a
inv g2 n2 n1
inv g3 y n2
`)
	s, err := New(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := s.Run(pat(c, logic.Zero), pat(c, logic.One), nil)
	if err != nil {
		t.Fatal(err)
	}
	// a rises at 0: n1 falls (+30), n2 rises (+35), y falls (+30): 95 ps.
	dm := DefaultDelays()
	want := dm.Fall[logic.Inv]*2 + dm.Rise[logic.Inv]
	es := tr.Edges["y"]
	if len(es) != 1 {
		t.Fatalf("y edges = %v", es)
	}
	if math.Abs(es[0].T-want) > 1e-15 {
		t.Fatalf("y arrival %.0f ps, want %.0f ps", es[0].T*1e12, want*1e12)
	}
	if es[0].V != logic.Zero {
		t.Fatalf("y final %v, want 0", es[0].V)
	}
	if st := tr.SettleTime(); math.Abs(st-es[0].T) > 1e-15 {
		t.Fatalf("settle %v", st)
	}
}

func TestTraceAt(t *testing.T) {
	tr := &Trace{
		Initial: map[string]logic.Value{"y": logic.Zero},
		Edges:   map[string][]Edge{"y": {{T: 10, V: logic.One}, {T: 20, V: logic.Zero}}},
	}
	if tr.At("y", 5) != logic.Zero || tr.At("y", 10) != logic.One ||
		tr.At("y", 15) != logic.One || tr.At("y", 25) != logic.Zero {
		t.Fatal("At interpolation broken")
	}
}

func TestPenaltyAddsDelay(t *testing.T) {
	c := mustParse(t, `circuit g
input a b
output y
nand g1 n1 a b
inv g2 y n1
`)
	s, err := New(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	v1 := pat(c, logic.Zero, logic.One)
	v2 := pat(c, logic.One, logic.One) // n1 falls, y rises
	good, err := s.Run(v1, v2, nil)
	if err != nil {
		t.Fatal(err)
	}
	extra := 200e-12
	bad, err := s.Run(v1, v2, []Penalty{{GateName: "g1", Rising: false, Extra: extra}})
	if err != nil {
		t.Fatal(err)
	}
	gy, by := good.Edges["y"], bad.Edges["y"]
	if len(gy) != 1 || len(by) != 1 {
		t.Fatalf("edges %v %v", gy, by)
	}
	if d := by[0].T - gy[0].T; math.Abs(d-extra) > 1e-15 {
		t.Fatalf("penalty propagated as %.0f ps, want %.0f", d*1e12, extra*1e12)
	}
	// A penalty in the non-excited direction does nothing.
	same, err := s.Run(v1, v2, []Penalty{{GateName: "g1", Rising: true, Extra: extra}})
	if err != nil {
		t.Fatal(err)
	}
	if same.Edges["y"][0].T != gy[0].T {
		t.Fatal("wrong-direction penalty changed timing")
	}
}

func TestStuckPenalty(t *testing.T) {
	c := mustParse(t, `circuit g
input a b
output y
nand g1 y a b
`)
	s, err := New(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	v1 := pat(c, logic.Zero, logic.One)
	v2 := pat(c, logic.One, logic.One)
	tr, err := s.Run(v1, v2, []Penalty{{GateName: "g1", Rising: false, Stuck: true}})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Edges["y"]) != 0 {
		t.Fatalf("stuck gate still transitioned: %v", tr.Edges["y"])
	}
	if tr.At("y", 1) != logic.One {
		t.Fatal("stuck output should hold the old value")
	}
}

func TestHazardFiltered(t *testing.T) {
	// y = AND(a, INV(a)): a rising creates a static-0 hazard candidate.
	// The input skew (~30 ps) is far below the AND delay (90 ps), so the
	// inertial simulator must filter the pulse entirely.
	c := mustParse(t, `circuit hz
input a
output y
inv g1 n1 a
and g2 y a n1
`)
	s, err := New(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := s.Run(pat(c, logic.Zero), pat(c, logic.One), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Edges["y"]) != 0 {
		t.Fatalf("hazard not filtered: %v", tr.Edges["y"])
	}
}

func TestDetectsAtCaptureSweep(t *testing.T) {
	c := mustParse(t, `circuit g
input a b
output y
nand g1 y a b
`)
	s, err := New(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	v1 := pat(c, logic.Zero, logic.One)
	v2 := pat(c, logic.One, logic.One)
	good, err := s.Run(v1, v2, nil)
	if err != nil {
		t.Fatal(err)
	}
	faulty, err := s.Run(v1, v2, []Penalty{{GateName: "g1", Rising: false, Extra: 100e-12}})
	if err != nil {
		t.Fatal(err)
	}
	nominal := good.Edges["y"][0].T
	// Capture between the good and faulty arrivals: detected.
	if !DetectsAt(c, good, faulty, nominal+50e-12) {
		t.Fatal("capture inside the window should detect")
	}
	// Capture after the faulty arrival: missed.
	if DetectsAt(c, good, faulty, nominal+150e-12) {
		t.Fatal("late capture should miss")
	}
	// Capture before the good arrival: nothing distinguishes yet.
	if DetectsAt(c, good, faulty, nominal-20e-12) {
		t.Fatal("too-early capture should not detect")
	}
}

func TestRunValidation(t *testing.T) {
	c := mustParse(t, "circuit g\ninput a b\noutput y\nnand g1 y a b\n")
	s, err := New(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(map[string]logic.Value{"a": logic.One}, pat(c, logic.One, logic.One), nil); err == nil {
		t.Fatal("incomplete v1 accepted")
	}
	if _, err := s.Run(pat(c, logic.One, logic.One), pat(c, logic.One, logic.Zero),
		[]Penalty{{GateName: "nope"}}); err == nil {
		t.Fatal("unknown penalty gate accepted")
	}
}

// TestQuickFinalValuesMatchEval: after settling, every net equals the
// static evaluation of the second pattern, for random circuits and random
// pattern pairs — the core correctness invariant of the event simulator.
func TestQuickFinalValuesMatchEval(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := logic.RandomCircuit(rng, logic.RandomOptions{Inputs: 1 + rng.Intn(5), Gates: 1 + rng.Intn(30)})
		s, err := New(c, nil)
		if err != nil {
			return false
		}
		mk := func() map[string]logic.Value {
			m := make(map[string]logic.Value, len(c.Inputs))
			for _, in := range c.Inputs {
				m[in] = logic.FromBool(rng.Intn(2) == 1)
			}
			return m
		}
		v1, v2 := mk(), mk()
		tr, err := s.Run(v1, v2, nil)
		if err != nil {
			return false
		}
		want := c.Eval(v2, nil)
		end := tr.SettleTime() + 1
		for _, net := range c.Nets() {
			if tr.At(net, end) != want[net] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickEdgesOrderedAndAlternating: per-net edge lists are strictly
// time-ordered and strictly alternating in value.
func TestQuickEdgesOrderedAndAlternating(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := logic.RandomCircuit(rng, logic.RandomOptions{Inputs: 2 + rng.Intn(4), Gates: 5 + rng.Intn(25)})
		s, err := New(c, nil)
		if err != nil {
			return false
		}
		mk := func() map[string]logic.Value {
			m := make(map[string]logic.Value, len(c.Inputs))
			for _, in := range c.Inputs {
				m[in] = logic.FromBool(rng.Intn(2) == 1)
			}
			return m
		}
		tr, err := s.Run(mk(), mk(), nil)
		if err != nil {
			return false
		}
		for net, es := range tr.Edges {
			prevV := tr.Initial[net]
			prevT := -1.0
			for _, e := range es {
				if e.T <= prevT || e.V == prevV {
					return false
				}
				prevT, prevV = e.T, e.V
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
