package timing

import (
	"fmt"
	"sort"
	"strings"

	"gobd/internal/logic"
)

// VCD renders a trace as a Value Change Dump viewable in standard waveform
// viewers. Timescale is 1 ps; nets are emitted in sorted order.
func VCD(tr *Trace, module string) string {
	var nets []string
	for n := range tr.Initial {
		nets = append(nets, n)
	}
	sort.Strings(nets)
	ids := make(map[string]string, len(nets))
	for i, n := range nets {
		ids[n] = vcdID(i)
	}
	var b strings.Builder
	b.WriteString("$timescale 1ps $end\n")
	fmt.Fprintf(&b, "$scope module %s $end\n", module)
	for _, n := range nets {
		fmt.Fprintf(&b, "$var wire 1 %s %s $end\n", ids[n], n)
	}
	b.WriteString("$upscope $end\n$enddefinitions $end\n")
	b.WriteString("#0\n$dumpvars\n")
	for _, n := range nets {
		b.WriteString(vcdValue(tr.Initial[n]) + ids[n] + "\n")
	}
	b.WriteString("$end\n")
	// Merge all edges into one time-ordered stream.
	type change struct {
		t   float64
		net string
		v   logic.Value
	}
	var all []change
	for _, n := range nets {
		for _, e := range tr.Edges[n] {
			all = append(all, change{t: e.T, net: n, v: e.V})
		}
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].t < all[j].t })
	last := -1.0
	for _, ch := range all {
		ps := int64(ch.t * 1e12)
		if float64(ps) != last {
			fmt.Fprintf(&b, "#%d\n", ps)
			last = float64(ps)
		}
		b.WriteString(vcdValue(ch.v) + ids[ch.net] + "\n")
	}
	return b.String()
}

// vcdID builds a compact printable identifier from an index.
func vcdID(i int) string {
	const alphabet = "!\"#$%&'()*+,-./0123456789:;<=>?@ABCDEFGHIJKLMNOPQRSTUVWXYZ"
	if i < len(alphabet) {
		return string(alphabet[i])
	}
	return string(alphabet[i%len(alphabet)]) + vcdID(i/len(alphabet)-1)
}

func vcdValue(v logic.Value) string {
	switch v {
	case logic.Zero:
		return "0"
	case logic.One:
		return "1"
	default:
		return "x"
	}
}
