package timing

import (
	"strings"
	"testing"

	"gobd/internal/logic"
)

func TestVCDOutput(t *testing.T) {
	c := mustParse(t, `circuit chain
input a
output y
inv g1 n1 a
inv g2 y n1
`)
	s, err := New(c, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := s.Run(pat(c, logic.Zero), pat(c, logic.One), nil)
	if err != nil {
		t.Fatal(err)
	}
	out := VCD(tr, "chain")
	for _, want := range []string{
		"$timescale 1ps $end",
		"$scope module chain $end",
		"$var wire 1",
		"$dumpvars",
		"#0",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("VCD missing %q:\n%s", want, out)
		}
	}
	// The input edge at t=0 and two gate edges must appear as timestamps.
	if !strings.Contains(out, "#30") || !strings.Contains(out, "#65") {
		t.Fatalf("VCD missing expected edge timestamps:\n%s", out)
	}
	// All three variables declared.
	if n := strings.Count(out, "$var wire 1"); n != 3 {
		t.Fatalf("VCD declares %d nets, want 3", n)
	}
}

func TestVCDIDs(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 200; i++ {
		id := vcdID(i)
		if id == "" || seen[id] {
			t.Fatalf("vcdID collision or empty at %d: %q", i, id)
		}
		seen[id] = true
	}
}
