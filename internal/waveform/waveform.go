// Package waveform provides time-series containers and the measurement
// primitives the reproduction uses to turn transient simulations into the
// paper's numbers: threshold crossings, 50%-to-50% transition delays, and
// stuck-at classification of outputs that never complete a transition.
package waveform

import (
	"fmt"
	"math"
	"strings"
)

// Series is a sampled signal: V[i] observed at T[i], with T strictly
// increasing.
type Series struct {
	Name string
	T    []float64
	V    []float64
}

// LengthError reports a Series whose time and value axes differ in length.
type LengthError struct {
	Name     string // series name
	TimeLen  int    // len(T)
	ValueLen int    // len(V)
}

func (e *LengthError) Error() string {
	return fmt.Sprintf("waveform: %s: time/value length mismatch %d vs %d", e.Name, e.TimeLen, e.ValueLen)
}

// CrossingError reports a stimulus series with no 50% supply crossing in
// the measured window, so no transition can be timed from it.
type CrossingError struct {
	Name  string  // series name
	After float64 // start of the searched window
}

func (e *CrossingError) Error() string {
	return fmt.Sprintf("waveform: stimulus %s has no 50%% crossing after %g", e.Name, e.After)
}

// TimeOrderError reports a time axis that fails to strictly increase:
// T[Index] <= T[Index-1].
type TimeOrderError struct {
	Name  string // series name
	Index int    // first offending sample
}

func (e *TimeOrderError) Error() string {
	return fmt.Sprintf("waveform: %s: time axis not increasing at index %d", e.Name, e.Index)
}

// New builds a Series, validating that the axes match and time increases.
// Violations surface as *LengthError and *TimeOrderError.
func New(name string, t, v []float64) (*Series, error) {
	if len(t) != len(v) {
		return nil, &LengthError{Name: name, TimeLen: len(t), ValueLen: len(v)}
	}
	for i := 1; i < len(t); i++ {
		if t[i] <= t[i-1] {
			return nil, &TimeOrderError{Name: name, Index: i}
		}
	}
	return &Series{Name: name, T: t, V: v}, nil
}

// MustNew is New that panics on error (for construction from simulator
// output, which is increasing by construction).
func MustNew(name string, t, v []float64) *Series {
	s, err := New(name, t, v)
	if err != nil {
		//obdcheck:allow paniccontract — Must-constructor contract: callers feed simulator output whose axes are valid by construction
		panic(err)
	}
	return s
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.T) }

// At linearly interpolates the signal value at time t, clamping outside the
// domain.
func (s *Series) At(t float64) float64 {
	n := len(s.T)
	if n == 0 {
		return 0
	}
	if t <= s.T[0] {
		return s.V[0]
	}
	if t >= s.T[n-1] {
		return s.V[n-1]
	}
	lo, hi := 0, n-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if s.T[mid] <= t {
			lo = mid
		} else {
			hi = mid
		}
	}
	f := (t - s.T[lo]) / (s.T[hi] - s.T[lo])
	return s.V[lo] + f*(s.V[hi]-s.V[lo])
}

// Final returns the last sample value.
func (s *Series) Final() float64 {
	if len(s.V) == 0 {
		return 0
	}
	return s.V[len(s.V)-1]
}

// Min and Max return the value extremes.
func (s *Series) Min() float64 {
	m := math.Inf(1)
	for _, v := range s.V {
		m = math.Min(m, v)
	}
	return m
}

// Max returns the largest sample value.
func (s *Series) Max() float64 {
	m := math.Inf(-1)
	for _, v := range s.V {
		m = math.Max(m, v)
	}
	return m
}

// Crossing returns the first time at/after tMin where the signal crosses
// level in the given direction (rising: from below to at-or-above), using
// linear interpolation between samples. ok is false if no crossing exists.
func (s *Series) Crossing(level float64, rising bool, tMin float64) (t float64, ok bool) {
	for i := 1; i < len(s.T); i++ {
		if s.T[i] < tMin {
			continue
		}
		a, b := s.V[i-1], s.V[i]
		var hit bool
		if rising {
			hit = a < level && b >= level
		} else {
			hit = a > level && b <= level
		}
		if !hit {
			continue
		}
		tc := s.T[i]
		if b != a {
			f := (level - a) / (b - a)
			tc = s.T[i-1] + f*(s.T[i]-s.T[i-1])
		}
		if tc < tMin {
			continue
		}
		return tc, true
	}
	return 0, false
}

// TransitionKind classifies a measured output transition.
type TransitionKind int

// Transition classifications. StuckHigh/StuckLow mean the output failed to
// complete the expected transition — the paper reports these as "sa-1" and
// "sa-0" table entries once breakdown is severe enough.
const (
	TransitionOK TransitionKind = iota
	StuckHigh
	StuckLow
)

// String implements fmt.Stringer.
func (k TransitionKind) String() string {
	switch k {
	case StuckHigh:
		return "sa-1"
	case StuckLow:
		return "sa-0"
	default:
		return "ok"
	}
}

// DelayMeasurement is the result of MeasureTransition.
type DelayMeasurement struct {
	Kind    TransitionKind
	Delay   float64 // 50%-to-50% delay (s); valid when Kind == TransitionOK
	CrossAt float64 // absolute output crossing time (s)
}

// MeasureTransition measures the delay from the stimulus 50% crossing to the
// output 50% crossing. rising refers to the OUTPUT transition direction.
// If the output never completes the transition (no crossing, or the final
// value remains on the wrong side of 50%), the result is classified
// StuckHigh or StuckLow, mirroring the paper's sa-1/sa-0 entries in Table 1.
func MeasureTransition(stimulus, output *Series, vdd float64, rising bool, tMin float64) (DelayMeasurement, error) {
	half := vdd / 2
	// The stimulus edge may be rising or falling; find whichever 50%
	// crossing occurs first at/after tMin.
	tr, okr := stimulus.Crossing(half, true, tMin)
	tf, okf := stimulus.Crossing(half, false, tMin)
	var t0 float64
	switch {
	case okr && okf:
		t0 = math.Min(tr, tf)
	case okr:
		t0 = tr
	case okf:
		t0 = tf
	default:
		return DelayMeasurement{}, &CrossingError{Name: stimulus.Name, After: tMin}
	}
	return MeasureTransitionFrom(output, vdd, rising, t0)
}

// MeasureTransitionFrom measures the output's 50% crossing delay relative
// to an explicit reference time t0 (e.g. the analytic midpoint of an input
// edge), with the same stuck-at classification as MeasureTransition.
func MeasureTransitionFrom(output *Series, vdd float64, rising bool, t0 float64) (DelayMeasurement, error) {
	half := vdd / 2
	tOut, ok := output.Crossing(half, rising, t0)
	if ok {
		// A crossing alone is not enough: the output must also settle on
		// the correct side (a glitch that returns does not count).
		finalOK := (rising && output.Final() >= half) || (!rising && output.Final() <= half)
		if finalOK {
			return DelayMeasurement{Kind: TransitionOK, Delay: tOut - t0, CrossAt: tOut}, nil
		}
	}
	if rising {
		return DelayMeasurement{Kind: StuckLow}, nil
	}
	return DelayMeasurement{Kind: StuckHigh}, nil
}

// CSV renders one or more series sharing a time axis as CSV text. All
// series are resampled onto the first series' time axis via interpolation.
func CSV(series ...*Series) string {
	if len(series) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteString("t")
	for _, s := range series {
		b.WriteString(",")
		b.WriteString(s.Name)
	}
	b.WriteString("\n")
	for _, t := range series[0].T {
		fmt.Fprintf(&b, "%.6e", t)
		for _, s := range series {
			fmt.Fprintf(&b, ",%.6e", s.At(t))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// ASCIIPlot renders the series as a rows×cols character plot — enough to
// eyeball the reproduced figures from a terminal.
func ASCIIPlot(s *Series, rows, cols int) string {
	if s.Len() == 0 || rows < 2 || cols < 2 {
		return ""
	}
	lo, hi := s.Min(), s.Max()
	if hi == lo {
		hi = lo + 1
	}
	grid := make([][]byte, rows)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", cols))
	}
	t0, t1 := s.T[0], s.T[s.Len()-1]
	for c := 0; c < cols; c++ {
		t := t0 + (t1-t0)*float64(c)/float64(cols-1)
		v := s.At(t)
		r := int(math.Round((hi - v) / (hi - lo) * float64(rows-1)))
		if r < 0 {
			r = 0
		}
		if r >= rows {
			r = rows - 1
		}
		grid[r][c] = '*'
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s  [%.3g, %.3g] V over [%.3g, %.3g] s\n", s.Name, lo, hi, t0, t1)
	for _, row := range grid {
		b.Write(row)
		b.WriteString("\n")
	}
	return b.String()
}
