package waveform

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func ramp(name string, n int, f func(t float64) float64) *Series {
	t := make([]float64, n)
	v := make([]float64, n)
	for i := range t {
		t[i] = float64(i) * 1e-12
		v[i] = f(t[i])
	}
	return MustNew(name, t, v)
}

func TestNewValidation(t *testing.T) {
	if _, err := New("x", []float64{0, 1}, []float64{0}); err == nil {
		t.Fatal("length mismatch not rejected")
	}
	if _, err := New("x", []float64{0, 0}, []float64{0, 1}); err == nil {
		t.Fatal("non-increasing time not rejected")
	}
	if _, err := New("x", []float64{0, 1}, []float64{0, 1}); err != nil {
		t.Fatalf("valid series rejected: %v", err)
	}
}

func TestAtInterpolation(t *testing.T) {
	s := MustNew("s", []float64{0, 1, 2}, []float64{0, 10, 0})
	cases := []struct{ x, want float64 }{
		{-1, 0}, {0, 0}, {0.5, 5}, {1, 10}, {1.25, 7.5}, {2, 0}, {3, 0},
	}
	for _, c := range cases {
		if got := s.At(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("At(%g) = %g, want %g", c.x, got, c.want)
		}
	}
}

func TestCrossing(t *testing.T) {
	s := MustNew("s", []float64{0, 1, 2, 3}, []float64{0, 2, 0, 2})
	if x, ok := s.Crossing(1, true, 0); !ok || math.Abs(x-0.5) > 1e-12 {
		t.Fatalf("rising crossing = %g, %v", x, ok)
	}
	if x, ok := s.Crossing(1, false, 0); !ok || math.Abs(x-1.5) > 1e-12 {
		t.Fatalf("falling crossing = %g, %v", x, ok)
	}
	if x, ok := s.Crossing(1, true, 1.0); !ok || math.Abs(x-2.5) > 1e-12 {
		t.Fatalf("rising crossing after tMin = %g, %v", x, ok)
	}
	if _, ok := s.Crossing(5, true, 0); ok {
		t.Fatal("crossing above range should not exist")
	}
}

func TestMeasureTransitionDelay(t *testing.T) {
	vdd := 3.3
	stim := ramp("in", 1000, func(x float64) float64 {
		return vdd * math.Min(1, x/200e-12) // rising, crosses 50% at 100ps
	})
	out := ramp("out", 1000, func(x float64) float64 {
		if x < 250e-12 {
			return vdd
		}
		return vdd * math.Max(0, 1-(x-250e-12)/100e-12) // falls, 50% at 300ps
	})
	m, err := MeasureTransition(stim, out, vdd, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind != TransitionOK {
		t.Fatalf("kind %v", m.Kind)
	}
	if math.Abs(m.Delay-200e-12) > 2e-12 {
		t.Fatalf("delay %g, want 200ps", m.Delay)
	}
}

func TestMeasureTransitionStuck(t *testing.T) {
	vdd := 3.3
	stim := ramp("in", 100, func(x float64) float64 { return vdd * math.Min(1, x/10e-12) })
	flatHigh := ramp("out", 100, func(float64) float64 { return vdd })
	m, err := MeasureTransition(stim, flatHigh, vdd, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind != StuckHigh {
		t.Fatalf("kind %v, want sa-1", m.Kind)
	}
	if m.Kind.String() != "sa-1" {
		t.Fatalf("string %q", m.Kind.String())
	}
	flatLow := ramp("out2", 100, func(float64) float64 { return 0 })
	m, err = MeasureTransition(stim, flatLow, vdd, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind != StuckLow || m.Kind.String() != "sa-0" {
		t.Fatalf("kind %v, want sa-0", m.Kind)
	}
}

func TestMeasureTransitionGlitchDoesNotCount(t *testing.T) {
	vdd := 3.3
	stim := ramp("in", 400, func(x float64) float64 { return vdd * math.Min(1, x/10e-12) })
	// Output dips below 50% briefly but recovers high: must classify sa-1
	// for an expected falling transition.
	out := ramp("out", 400, func(x float64) float64 {
		if x > 100e-12 && x < 150e-12 {
			return 0.2
		}
		return vdd
	})
	m, err := MeasureTransition(stim, out, vdd, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind != StuckHigh {
		t.Fatalf("glitch wrongly accepted as transition: %v", m.Kind)
	}
}

func TestMeasureTransitionNoStimulusEdge(t *testing.T) {
	vdd := 3.3
	flat := ramp("in", 10, func(float64) float64 { return 0 })
	out := ramp("out", 10, func(float64) float64 { return vdd })
	if _, err := MeasureTransition(flat, out, vdd, false, 0); err == nil {
		t.Fatal("expected error for stimulus without an edge")
	}
}

func TestCSV(t *testing.T) {
	a := MustNew("a", []float64{0, 1}, []float64{0, 1})
	b := MustNew("b", []float64{0, 1}, []float64{1, 0})
	out := CSV(a, b)
	if !strings.HasPrefix(out, "t,a,b\n") {
		t.Fatalf("csv header wrong: %q", out)
	}
	if !strings.Contains(out, "0.000000e+00,0.000000e+00,1.000000e+00") {
		t.Fatalf("csv first row wrong: %q", out)
	}
}

func TestASCIIPlot(t *testing.T) {
	s := ramp("sine", 100, func(x float64) float64 { return math.Sin(x * 1e12) })
	p := ASCIIPlot(s, 10, 40)
	if !strings.Contains(p, "*") || !strings.Contains(p, "sine") {
		t.Fatalf("plot missing content:\n%s", p)
	}
	lines := strings.Split(strings.TrimRight(p, "\n"), "\n")
	if len(lines) != 11 { // header + 10 rows
		t.Fatalf("plot has %d lines, want 11", len(lines))
	}
}

// TestQuickAtWithinHull: interpolation never leaves the sample value hull.
func TestQuickAtWithinHull(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		tt := make([]float64, n)
		vv := make([]float64, n)
		acc := 0.0
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := range tt {
			acc += rng.Float64() + 1e-3
			tt[i] = acc
			vv[i] = rng.NormFloat64()
			lo = math.Min(lo, vv[i])
			hi = math.Max(hi, vv[i])
		}
		s := MustNew("q", tt, vv)
		for k := 0; k < 50; k++ {
			x := rng.Float64() * (acc + 1)
			v := s.At(x)
			if v < lo-1e-9 || v > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCrossingConsistent: any reported crossing point interpolates to
// the crossing level.
func TestQuickCrossingConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		tt := make([]float64, n)
		vv := make([]float64, n)
		acc := 0.0
		for i := range tt {
			acc += rng.Float64() + 1e-3
			tt[i] = acc
			vv[i] = rng.NormFloat64()
		}
		s := MustNew("q", tt, vv)
		level := rng.NormFloat64() * 0.5
		for _, rising := range []bool{true, false} {
			if x, ok := s.Crossing(level, rising, 0); ok {
				if math.Abs(s.At(x)-level) > 1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestTypedErrors: New's failures are matchable typed values carrying the
// offending dimensions, per the repo's typed-error contract.
func TestTypedErrors(t *testing.T) {
	_, err := New("mis", []float64{0, 1, 2}, []float64{0})
	var le *LengthError
	if !errors.As(err, &le) {
		t.Fatalf("length mismatch: got %T (%v), want *LengthError", err, err)
	}
	if le.Name != "mis" || le.TimeLen != 3 || le.ValueLen != 1 {
		t.Fatalf("LengthError fields = %+v", *le)
	}

	_, err = New("ord", []float64{0, 2, 2, 3}, []float64{0, 1, 2, 3})
	var te *TimeOrderError
	if !errors.As(err, &te) {
		t.Fatalf("non-increasing axis: got %T (%v), want *TimeOrderError", err, err)
	}
	if te.Name != "ord" || te.Index != 2 {
		t.Fatalf("TimeOrderError fields = %+v", *te)
	}
}

// TestMustNewPanics: the Must-constructor contract converts the typed
// error into a panic carrying that same error value.
func TestMustNewPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("MustNew accepted a length mismatch")
		}
		err, ok := r.(error)
		if !ok {
			t.Fatalf("panic value %T, want error", r)
		}
		var le *LengthError
		if !errors.As(err, &le) {
			t.Fatalf("panic error %T, want *LengthError", err)
		}
	}()
	MustNew("bad", []float64{0, 1}, nil)
}
