package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// The three determinism hazards detlint knows about, each named by the
// rule string used in //detlint:allow annotations.
const (
	ruleRangeMap = "rangemap"
	ruleTimeNow  = "timenow"
	ruleRand     = "rand"
)

// Diag is one finding.
type Diag struct {
	Pos  token.Position
	Rule string
	Msg  string
}

func (d Diag) String() string {
	return fmt.Sprintf("%s: %s", d.Pos, d.Msg)
}

// checker runs the determinism checks over one package's files. info may
// be nil (standalone parse-only mode): map detection then falls back to
// syntactic type inference from declarations, which covers parameters and
// vars with literal map types or make(map[...]) initializers.
type checker struct {
	fset  *token.FileSet
	info  *types.Info
	diags []Diag
	// allow[file][line] holds the rules suppressed at that line via a
	// //detlint:allow comment on the same or the preceding line.
	allow map[string]map[int]map[string]bool
}

func newChecker(fset *token.FileSet, info *types.Info) *checker {
	return &checker{fset: fset, info: info, allow: make(map[string]map[int]map[string]bool)}
}

// File checks one file and accumulates diagnostics.
func (c *checker) File(f *ast.File) {
	c.collectAllows(f)
	importsMathRand := fileImports(f, "math/rand")
	importsTime := fileImports(f, "time")
	for _, decl := range f.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		c.checkRangeMap(fn)
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if importsTime && c.isPkgCall(call, "time", "Now") {
				c.report(call.Pos(), ruleTimeNow,
					"time.Now is wall-clock nondeterminism; results depending on it will not replay")
			}
			if importsMathRand {
				if name, banned := c.globalRandCall(call); banned {
					c.report(call.Pos(), ruleRand,
						fmt.Sprintf("rand.%s draws from the global math/rand source; use rand.New(rand.NewSource(seed)) for replayable results", name))
				}
			}
			return true
		})
	}
}

// Diags returns the findings in file/position order (the traversal order).
func (c *checker) Diags() []Diag { return c.diags }

// collectAllows scans comments for //detlint:allow annotations.
func (c *checker) collectAllows(f *ast.File) {
	for _, cg := range f.Comments {
		for _, cm := range cg.List {
			text := strings.TrimPrefix(cm.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, "detlint:allow") {
				continue
			}
			pos := c.fset.Position(cm.Pos())
			lines := c.allow[pos.Filename]
			if lines == nil {
				lines = make(map[int]map[string]bool)
				c.allow[pos.Filename] = lines
			}
			rules := lines[pos.Line]
			if rules == nil {
				rules = make(map[string]bool)
				lines[pos.Line] = rules
			}
			// Rule names lead the annotation; anything after the first
			// unknown token is free-form justification.
			for _, r := range strings.FieldsFunc(strings.TrimPrefix(text, "detlint:allow"), func(r rune) bool {
				return r == ',' || r == ' ' || r == '\t'
			}) {
				if r != ruleRangeMap && r != ruleTimeNow && r != ruleRand {
					break
				}
				rules[r] = true
			}
		}
	}
}

// allowed reports whether the rule is suppressed at the position (same
// line or the line above).
func (c *checker) allowed(pos token.Pos, rule string) bool {
	p := c.fset.Position(pos)
	lines := c.allow[p.Filename]
	if lines == nil {
		return false
	}
	return lines[p.Line][rule] || lines[p.Line-1][rule]
}

func (c *checker) report(pos token.Pos, rule, msg string) {
	if c.allowed(pos, rule) {
		return
	}
	c.diags = append(c.diags, Diag{Pos: c.fset.Position(pos), Rule: rule,
		Msg: fmt.Sprintf("%s (suppress with //detlint:allow %s)", msg, rule)})
}

// checkRangeMap flags range statements over maps whose body feeds
// order-sensitive sinks: appends to a slice, channel sends, or fmt
// printing. An append target that is later passed to a sort call in the
// same function is considered re-canonicalized and not flagged.
func (c *checker) checkRangeMap(fn *ast.FuncDecl) {
	sorted := make(map[string]bool) // ExprString of slices sorted in this function
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		isSort := pkg.Name == "sort" || (pkg.Name == "slices" && strings.HasPrefix(sel.Sel.Name, "Sort"))
		if isSort {
			sorted[types.ExprString(call.Args[0])] = true
		}
		return true
	})

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if !c.isMapExpr(fn, rng.X) {
			return true
		}
		ast.Inspect(rng.Body, func(m ast.Node) bool {
			switch s := m.(type) {
			case *ast.SendStmt:
				c.report(rng.Pos(), ruleRangeMap,
					fmt.Sprintf("iteration over map %s sends on a channel in map order, which is nondeterministic",
						types.ExprString(rng.X)))
				return false
			case *ast.CallExpr:
				if id, ok := s.Fun.(*ast.Ident); ok && id.Name == "append" && len(s.Args) > 0 {
					target := types.ExprString(s.Args[0])
					if !sorted[target] {
						c.report(rng.Pos(), ruleRangeMap,
							fmt.Sprintf("iteration over map %s appends to %s in map order, which is nondeterministic (sort it afterwards or iterate a sorted key slice)",
								types.ExprString(rng.X), target))
					}
					return false
				}
				if sel, ok := s.Fun.(*ast.SelectorExpr); ok {
					if pkg, ok := sel.X.(*ast.Ident); ok && pkg.Name == "fmt" &&
						(strings.HasPrefix(sel.Sel.Name, "Print") || strings.HasPrefix(sel.Sel.Name, "Fprint")) {
						c.report(rng.Pos(), ruleRangeMap,
							fmt.Sprintf("iteration over map %s prints in map order, which is nondeterministic",
								types.ExprString(rng.X)))
						return false
					}
				}
			}
			return true
		})
		return true
	})
}

// isMapExpr reports whether the expression has map type, using full type
// information when available and declaration syntax otherwise.
func (c *checker) isMapExpr(fn *ast.FuncDecl, e ast.Expr) bool {
	if c.info != nil {
		if t := c.info.TypeOf(e); t != nil {
			_, ok := t.Underlying().(*types.Map)
			return ok
		}
		return false
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	// Parameters and receivers with a literal map type.
	if fn.Recv != nil {
		if fieldHasMapType(fn.Recv, id.Name) {
			return true
		}
	}
	if fn.Type.Params != nil && fieldHasMapType(fn.Type.Params, id.Name) {
		return true
	}
	// Local declarations: var x map[...]..., x := make(map[...]...),
	// x := map[...]...{...}.
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ValueSpec:
			for i, name := range s.Names {
				if name.Name != id.Name {
					continue
				}
				if _, ok := s.Type.(*ast.MapType); ok {
					found = true
				} else if i < len(s.Values) && exprMakesMap(s.Values[i]) {
					found = true
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range s.Lhs {
				l, ok := lhs.(*ast.Ident)
				if !ok || l.Name != id.Name || i >= len(s.Rhs) {
					continue
				}
				if exprMakesMap(s.Rhs[i]) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// fieldHasMapType reports whether the field list declares name with a
// literal map type.
func fieldHasMapType(fields *ast.FieldList, name string) bool {
	for _, f := range fields.List {
		if _, ok := f.Type.(*ast.MapType); !ok {
			continue
		}
		for _, n := range f.Names {
			if n.Name == name {
				return true
			}
		}
	}
	return false
}

// exprMakesMap matches make(map[...]...) and map literal initializers.
func exprMakesMap(e ast.Expr) bool {
	switch v := e.(type) {
	case *ast.CallExpr:
		if id, ok := v.Fun.(*ast.Ident); ok && id.Name == "make" && len(v.Args) > 0 {
			_, ok := v.Args[0].(*ast.MapType)
			return ok
		}
	case *ast.CompositeLit:
		_, ok := v.Type.(*ast.MapType)
		return ok
	}
	return false
}

// isPkgCall matches pkg.Fn(...) where pkg resolves to the named package
// (by type information when available, by identifier otherwise).
func (c *checker) isPkgCall(call *ast.CallExpr, pkg, fn string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != fn {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || id.Name != pkg {
		return false
	}
	if c.info != nil {
		pn, ok := c.info.Uses[id].(*types.PkgName)
		return ok && pn.Imported().Name() == pkg
	}
	return true
}

// globalRandFuncs are the math/rand package-level functions backed by the
// shared global source. Constructors (New, NewSource) are fine: a seeded
// private source is exactly the replayable idiom.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
}

// globalRandCall matches rand.<global-source func>(...).
func (c *checker) globalRandCall(call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !globalRandFuncs[sel.Sel.Name] {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || id.Name != "rand" {
		return "", false
	}
	if c.info != nil {
		pn, ok := c.info.Uses[id].(*types.PkgName)
		if !ok || pn.Imported().Path() != "math/rand" {
			return "", false
		}
	}
	return sel.Sel.Name, true
}

// fileImports reports whether the file imports the given path.
func fileImports(f *ast.File, path string) bool {
	for _, imp := range f.Imports {
		if strings.Trim(imp.Path.Value, `"`) == path {
			return true
		}
	}
	return false
}
