package main

import (
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// check parses one snippet and returns the rules fired, in order.
func check(t *testing.T, src string) []string {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "snippet.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	ch := newChecker(fset, nil)
	ch.File(f)
	var rules []string
	for _, d := range ch.Diags() {
		rules = append(rules, d.Rule)
	}
	return rules
}

func one(t *testing.T, src, want string) {
	t.Helper()
	got := check(t, src)
	if len(got) != 1 || got[0] != want {
		t.Fatalf("want one %q finding, got %v", want, got)
	}
}

func none(t *testing.T, src string) {
	t.Helper()
	if got := check(t, src); len(got) != 0 {
		t.Fatalf("want no findings, got %v", got)
	}
}

func TestRangeMapAppend(t *testing.T) {
	one(t, `package p
func f(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}`, ruleRangeMap)
}

func TestRangeMapSortSuppression(t *testing.T) {
	// The podem.go idiom: append in map order, canonicalize with sort.
	none(t, `package p
import "sort"
func f(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}`)
}

func TestRangeMapLocalMakeAndSend(t *testing.T) {
	one(t, `package p
func f(ch chan int) {
	m := make(map[int]int)
	for _, v := range m {
		ch <- v
	}
}`, ruleRangeMap)
}

func TestRangeMapPrint(t *testing.T) {
	one(t, `package p
import "fmt"
func f() {
	m := map[string]int{"a": 1}
	for k := range m {
		fmt.Println(k)
	}
}`, ruleRangeMap)
}

func TestRangeMapOrderInsensitiveBodyClean(t *testing.T) {
	// Reductions (sum, max, map-to-map copies) are order-insensitive.
	none(t, `package p
func f(m map[string]int) int {
	total := 0
	q := make(map[string]int)
	for k, v := range m {
		total += v
		q[k] = v
	}
	return total
}`)
}

func TestRangeOverSliceClean(t *testing.T) {
	none(t, `package p
func f(s []int, ch chan int) {
	for _, v := range s {
		ch <- v
	}
}`)
}

func TestTimeNow(t *testing.T) {
	one(t, `package p
import "time"
func f() int64 { return time.Now().Unix() }`, ruleTimeNow)
}

func TestGlobalRand(t *testing.T) {
	one(t, `package p
import "math/rand"
func f() int { return rand.Intn(6) }`, ruleRand)
}

func TestSeededRandAllowed(t *testing.T) {
	// The scan.go idiom: a private seeded source.
	none(t, `package p
import "math/rand"
func f(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(6)
}`)
}

func TestAllowAnnotation(t *testing.T) {
	none(t, `package p
import "time"
func f() int64 {
	t := time.Now() //detlint:allow timenow stats only
	return t.Unix()
}`)
	none(t, `package p
import "time"
func f() int64 {
	//detlint:allow timenow
	t := time.Now()
	return t.Unix()
}`)
	// The annotation must name the right rule.
	one(t, `package p
import "time"
func f() int64 {
	t := time.Now() //detlint:allow rand
	return t.Unix()
}`, ruleTimeNow)
}

// TestVettoolOnATPG is the acceptance check: built as a vettool, detlint
// must run clean over internal/atpg (the annotated scheduler timing, the
// sorted podem requirement list and the seeded scan source all pass).
func TestVettoolOnATPG(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool unavailable")
	}
	root, err := filepath.Abs(filepath.Join("..", "..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(t.TempDir(), "detlint")
	build := exec.Command("go", "build", "-o", bin, "./tools/analyzers/detlint")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building detlint: %v\n%s", err, out)
	}
	vet := exec.Command("go", "vet", "-vettool="+bin, "./internal/atpg/...")
	vet.Dir = root
	vet.Env = append(os.Environ(), "GOFLAGS=-mod=mod")
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool=detlint ./internal/atpg/... failed: %v\n%s", err, out)
	}
}
