// Command detlint is a go vet analyzer (usable via -vettool) that flags
// nondeterminism hazards in code governed by a determinism contract, such
// as internal/atpg's scheduler ("results bit-identical for any worker
// count"). It reports:
//
//   - rangemap: iteration over a map feeding an order-sensitive sink
//     (append, channel send, fmt printing) without a subsequent sort;
//   - timenow: time.Now calls;
//   - rand: math/rand package-level functions drawing from the shared
//     global source (rand.New(rand.NewSource(seed)) is the allowed idiom).
//
// Findings are suppressed by a "//detlint:allow <rule>" comment on the
// same or the preceding line — the annotation that marks stats-only
// timing and similar result-neutral uses.
//
// The tool speaks cmd/go's vettool protocol (-V=full, -flags, and a
// *.cfg unit file) directly on the standard library, because the usual
// golang.org/x/tools unitchecker scaffolding is not vendored here. It
// also runs standalone over directories (parse-only, with syntactic map
// inference) for quick use outside the build: detlint ./internal/atpg
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	args := os.Args[1:]
	if len(args) == 1 && strings.HasPrefix(args[0], "-V") {
		printVersion()
		return
	}
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Println("[]") // no analyzer flags
		return
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(vetUnit(args[0]))
	}
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: detlint <dir>... (or via go vet -vettool=detlint)")
		os.Exit(1)
	}
	os.Exit(standalone(args))
}

// printVersion answers cmd/go's -V=full tool-identity handshake: the
// output doubles as the tool's build ID, so it hashes the executable the
// same way the unitchecker convention does.
func printVersion() {
	h := sha256.New()
	if f, err := os.Open(os.Args[0]); err == nil {
		io.Copy(h, f)
		f.Close()
	}
	fmt.Printf("%s version devel buildID=%x\n", os.Args[0], h.Sum(nil))
}

// vetConfig mirrors the JSON unit file cmd/go hands a vettool per
// package.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vetUnit analyzes one vet unit. Exit codes follow the vettool contract:
// 0 clean, nonzero with file:line:col messages on stderr otherwise.
func vetUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "detlint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "detlint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// cmd/go expects the facts file to exist even though detlint exports
	// none; write it before anything can fail.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0666); err != nil {
			fmt.Fprintf(os.Stderr, "detlint: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0 // dependency pass: facts only, no diagnostics wanted
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if strings.HasSuffix(name, "_test.go") {
			continue // the determinism contract governs shipped code only
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintf(os.Stderr, "detlint: %v\n", err)
			return 1
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return 0
	}

	info := typecheck(fset, files, &cfg)
	if info == nil && cfg.SucceedOnTypecheckFailure {
		return 0
	}
	ch := newChecker(fset, info) // info may be nil: fall back to syntax
	for _, f := range files {
		ch.File(f)
	}
	for _, d := range ch.Diags() {
		fmt.Fprintf(os.Stderr, "%s\n", d)
	}
	if len(ch.Diags()) > 0 {
		return 2
	}
	return 0
}

// typecheck resolves the unit against the export data cmd/go supplied.
// On failure it returns nil and the caller decides whether syntax-only
// checking is acceptable.
func typecheck(fset *token.FileSet, files []*ast.File, cfg *vetConfig) *types.Info {
	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(path string) (*types.Package, error) {
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		return compilerImporter.Import(path)
	})
	tc := &types.Config{
		Importer: imp,
		Error:    func(error) {}, // collect as many files as possible
	}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Uses:  make(map[*ast.Ident]types.Object),
		Defs:  make(map[*ast.Ident]types.Object),
	}
	if _, err := tc.Check(cfg.ImportPath, fset, files, info); err != nil {
		return nil
	}
	return info
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// standalone walks directories and checks every non-test .go file with
// syntax-only analysis.
func standalone(dirs []string) int {
	fset := token.NewFileSet()
	ch := newChecker(fset, nil)
	for _, dir := range dirs {
		err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			f, perr := parser.ParseFile(fset, path, nil, parser.ParseComments)
			if perr != nil {
				return perr
			}
			ch.File(f)
			return nil
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "detlint: %v\n", err)
			return 1
		}
	}
	for _, d := range ch.Diags() {
		fmt.Fprintf(os.Stderr, "%s\n", d)
	}
	if len(ch.Diags()) > 0 {
		return 2
	}
	return 0
}
