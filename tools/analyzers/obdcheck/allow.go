package main

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Suppression annotations. The unified form is
//
//	//obdcheck:allow <rule>[,<rule>...] — <reason>
//
// on the same line as the finding or the line above. The reason is
// mandatory: an allow without one is itself reported (allowcheck), and
// does not suppress anything. The legacy //detlint:allow form is still
// honored for the three migrated determinism rules so stacked branches
// keep vetting, but it is reported as deprecated.

// allowEntry is one (annotation line, rule) suppression.
type allowEntry struct {
	file   string
	line   int
	rule   string
	reason string
	legacy bool // came from a //detlint:allow comment
	used   bool // suppressed at least one finding this run
}

// allowSet indexes the package's suppressions and accumulates the
// allowcheck findings discovered while parsing them.
type allowSet struct {
	entries []*allowEntry
	byLine  map[string]map[int][]*allowEntry
	// problems are allowcheck findings (unknown rule, missing reason,
	// deprecated form) recorded at parse time.
	problems []finding
}

// suppress reports whether a finding of rule at position is covered by an
// allow on the same or preceding line, marking the entry used.
func (s *allowSet) suppress(pos token.Position, rule string) bool {
	lines := s.byLine[pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, e := range lines[line] {
			if e.rule == rule {
				e.used = true
				return true
			}
		}
	}
	return false
}

// collectAllows parses every suppression annotation in the package.
func collectAllows(p *pass) *allowSet {
	s := &allowSet{byLine: make(map[string]map[int][]*allowEntry)}
	addProblem := func(pos token.Position, msg string) {
		s.problems = append(s.problems, finding{
			File: pos.Filename, Line: pos.Line, Col: pos.Column,
			Rule: ruleAllowCheck, Msg: msg,
		})
	}
	add := func(e *allowEntry) {
		s.entries = append(s.entries, e)
		lines := s.byLine[e.file]
		if lines == nil {
			lines = make(map[int][]*allowEntry)
			s.byLine[e.file] = lines
		}
		lines[e.line] = append(lines[e.line], e)
	}
	for _, f := range p.files {
		for _, cg := range f.Comments {
			for _, cm := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(cm.Text, "//"))
				legacy := false
				var rest string
				switch {
				case strings.HasPrefix(text, "obdcheck:allow"):
					rest = strings.TrimPrefix(text, "obdcheck:allow")
				case strings.HasPrefix(text, "detlint:allow"):
					rest = strings.TrimPrefix(text, "detlint:allow")
					legacy = true
				default:
					continue
				}
				pos := p.fset.Position(cm.Pos())
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					addProblem(pos, "suppression names no rule; write //obdcheck:allow <rule> — <reason>")
					continue
				}
				var rules []string
				badRule := false
				for _, r := range strings.Split(fields[0], ",") {
					r = strings.TrimSpace(r)
					if r == "" {
						continue
					}
					if !knownRule(r) {
						addProblem(pos, fmt.Sprintf("unknown rule %q in suppression (known rules: %s)", r, ruleNames()))
						badRule = true
						continue
					}
					rules = append(rules, r)
				}
				if badRule {
					continue // an allow naming an unknown rule is inert, never silently honored
				}
				reason := strings.TrimLeft(strings.TrimSpace(strings.Join(fields[1:], " ")), "—-– ")
				if legacy {
					addProblem(pos, fmt.Sprintf("//detlint:allow is deprecated; write //obdcheck:allow %s — <reason>", strings.Join(rules, ",")))
				} else if reason == "" {
					addProblem(pos, "suppression carries no reason; write //obdcheck:allow <rule> — <reason>")
					continue // a reasonless allow is inert
				}
				for _, r := range rules {
					add(&allowEntry{file: pos.Filename, line: pos.Line, rule: r, reason: reason, legacy: legacy})
				}
			}
		}
	}
	return s
}

// reportAllowFindings emits the parse-time allowcheck findings and, with
// -staleallows, every allow that suppressed nothing (for enabled rules:
// an allow for a disabled rule cannot prove itself stale).
func (p *pass) reportAllowFindings() {
	p.findings = append(p.findings, p.allows.problems...)
	if !p.cfg.staleAllows {
		return
	}
	for _, e := range p.allows.entries {
		if e.used || !p.cfg.enabled[e.rule] {
			continue
		}
		p.findings = append(p.findings, finding{
			File: e.file, Line: e.line, Col: 1, Rule: ruleAllowCheck,
			Msg: fmt.Sprintf("stale suppression: no %s finding on this or the next line; delete the allow", e.rule),
		})
	}
}

// ruleNames returns the registered rule names, sorted, for error text.
func ruleNames() string {
	names := make([]string, 0, len(registry))
	for _, r := range registry {
		names = append(names, r.Name)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}
