package main

import (
	"go/ast"
	"go/types"
	"strings"
)

// The ctxflow rule: PR 3 threaded context.Context through the batch
// entry points (ForEachCtx, RunFaultsCtx, Generate*Ctx, the serve
// handlers); this rule keeps the threading honest. Four arms:
//
//  1. A function that receives a ctx must not mint a fresh
//     context.Background()/context.TODO() — that silently detaches the
//     work from the caller's cancellation.
//  2. A function that receives a ctx must not call the non-Ctx variant
//     of a callee whose FooCtx sibling exists — the sibling is exactly
//     the cancellation-aware path the ctx should flow into.
//  3. A declared ctx parameter must be used (or renamed _): an ignored
//     ctx advertises cancellation the function does not deliver.
//  4. Library code (non-main packages) must not mint
//     context.Background()/TODO() at all, except inside the blessed
//     wrapper idiom: a function Foo whose FooCtx sibling exists in the
//     same package is the documented compatibility shim (Foo calls
//     FooCtx(context.Background(), ...)). Package main creates root
//     contexts legitimately.
//
// False-positive policy: the rule is syntactic about what "receives a
// ctx" means (a parameter of type context.Context, under whatever local
// import name), and sibling discovery falls back from type-resolved
// package/method lookup to the same-package declaration set when type
// information is missing. Deliberate detachment (server-lifetime
// contexts, goroutines that must outlive the request) takes a reasoned
// //obdcheck:allow ctxflow annotation.

// checkCtxFlow runs the ctxflow arms over one file.
func (p *pass) checkCtxFlow(f *ast.File) {
	imports := importTable(f)
	ctxName := ""
	for name, path := range imports {
		if path == "context" {
			ctxName = name
		}
	}
	if ctxName == "" {
		return // no context import, nothing to misthread
	}
	declNames := p.declaredFuncNames()
	isMain := f.Name.Name == "main"

	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		ctxParams := ctxParamNames(fd.Type, ctxName)
		takesCtx := len(ctxParams) > 0 || hasCtxParam(fd.Type, ctxName)
		hasCtxSibling := declNames[fd.Name.Name+"Ctx"]

		// Arm 3: unused ctx parameter.
		for _, name := range ctxParams {
			if !identUsed(fd.Body, name) {
				p.report(fd.Pos(), ruleCtxFlow,
					"ctx parameter "+name+" is never used; thread it into the callees or rename it _")
			}
		}

		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if isCtxRoot(call, ctxName) {
				switch {
				case takesCtx:
					// Arm 1: minting a root context while holding one.
					p.report(call.Pos(), ruleCtxFlow,
						"function receives a ctx but mints context."+rootName(call)+"(); thread the parameter instead")
				case !isMain && !hasCtxSibling:
					// Arm 4: root context in library code outside the
					// Foo/FooCtx wrapper idiom.
					p.report(call.Pos(), ruleCtxFlow,
						"library code mints context."+rootName(call)+"(); accept a ctx (or add a "+fd.Name.Name+"Ctx variant and make this the compatibility wrapper)")
				}
				return true
			}
			// Arm 2: dropping the ctx on a callee with a Ctx sibling.
			if takesCtx {
				if callee, sibling := p.ctxSibling(call, declNames); sibling != "" {
					p.report(call.Pos(), ruleCtxFlow,
						"call to "+callee+" drops the ctx; call "+sibling+" with it")
				}
			}
			return true
		})
	}
}

// rootName renders Background or TODO for the diagnostic.
func rootName(call *ast.CallExpr) string {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		return sel.Sel.Name
	}
	return "Background"
}

// isCtxRoot reports whether the call is context.Background() or
// context.TODO() under the file's local import name.
func isCtxRoot(call *ast.CallExpr, ctxName string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	base, ok := sel.X.(*ast.Ident)
	if !ok || base.Name != ctxName {
		return false
	}
	return sel.Sel.Name == "Background" || sel.Sel.Name == "TODO"
}

// hasCtxParam reports whether the signature declares any context.Context
// parameter (named or not).
func hasCtxParam(ft *ast.FuncType, ctxName string) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if isCtxType(field.Type, ctxName) {
			return true
		}
	}
	return false
}

// ctxParamNames returns the declared (non-blank) names of the signature's
// context.Context parameters.
func ctxParamNames(ft *ast.FuncType, ctxName string) []string {
	if ft.Params == nil {
		return nil
	}
	var names []string
	for _, field := range ft.Params.List {
		if !isCtxType(field.Type, ctxName) {
			continue
		}
		for _, id := range field.Names {
			if id.Name != "_" {
				names = append(names, id.Name)
			}
		}
	}
	return names
}

// isCtxType matches the context.Context selector under the local import
// name.
func isCtxType(expr ast.Expr, ctxName string) bool {
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	base, ok := sel.X.(*ast.Ident)
	return ok && base.Name == ctxName && sel.Sel.Name == "Context"
}

// identUsed reports whether the identifier name occurs in the body.
func identUsed(body *ast.BlockStmt, name string) bool {
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			used = true
			return false
		}
		return !used
	})
	return used
}

// declaredFuncNames collects the names of every function and method
// declared in the package — the sibling-discovery set for the syntactic
// fallback (receiver types are deliberately ignored: Foo/FooCtx naming is
// a package-wide convention here).
func (p *pass) declaredFuncNames() map[string]bool {
	names := make(map[string]bool)
	for _, f := range p.files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				names[fd.Name.Name] = true
			}
		}
	}
	return names
}

// ctxSibling reports the rendered callee and its Ctx-sibling name when
// the call resolves to a function Foo with an existing FooCtx variant and
// the call itself passes no context. Empty sibling means no finding.
func (p *pass) ctxSibling(call *ast.CallExpr, declNames map[string]bool) (callee, sibling string) {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return "", ""
	}
	if strings.HasSuffix(id.Name, "Ctx") {
		return "", ""
	}
	// Typed path: resolve the callee and look the sibling up in its own
	// package scope or method set.
	if p.info != nil {
		if fn, ok := p.info.Uses[id].(*types.Func); ok && fn.Pkg() != nil {
			sig, _ := fn.Type().(*types.Signature)
			if sig == nil || signatureTakesCtx(sig) {
				return "", "" // the ctx is (or can be) passed already
			}
			want := fn.Name() + "Ctx"
			if recv := sig.Recv(); recv != nil {
				t := recv.Type()
				if ptr, isPtr := t.(*types.Pointer); isPtr {
					t = ptr.Elem()
				}
				if named, isNamed := t.(*types.Named); isNamed {
					for i := 0; i < named.NumMethods(); i++ {
						if named.Method(i).Name() == want {
							return named.Obj().Name() + "." + fn.Name(), want
						}
					}
				}
				return "", ""
			}
			if obj := fn.Pkg().Scope().Lookup(want); obj != nil {
				if _, isFunc := obj.(*types.Func); isFunc {
					return fn.Name(), want
				}
			}
			return "", ""
		}
	}
	// Syntactic fallback: same-package declaration-set lookup only (an
	// unresolved imported callee stays invisible — one-sided by design).
	if declNames[id.Name] && declNames[id.Name+"Ctx"] {
		return id.Name, id.Name + "Ctx"
	}
	return "", ""
}

// signatureTakesCtx reports whether any parameter is context.Context.
func signatureTakesCtx(sig *types.Signature) bool {
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if named, ok := params.At(i).Type().(*types.Named); ok {
			obj := named.Obj()
			if obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context" {
				return true
			}
		}
	}
	return false
}
