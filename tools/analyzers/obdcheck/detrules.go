package main

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// The three determinism rules migrated from detlint: map-range into
// order-sensitive sinks, wall-clock reads, and draws from the global
// math/rand source. They are syntax-first (they work without type
// information, using declaration inference for map detection) so the
// standalone mode stays useful on packages that fail to typecheck.

// checkDeterminism runs rangemap/timenow/rand over one file, honoring
// the per-rule enable flags.
func (p *pass) checkDeterminism(f *ast.File) {
	importsMathRand := fileImports(f, "math/rand")
	importsTime := fileImports(f, "time")
	for _, decl := range f.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		if p.cfg.enabled[ruleRangeMap] {
			p.checkRangeMap(fn)
		}
		if !p.cfg.enabled[ruleTimeNow] && !p.cfg.enabled[ruleRand] {
			continue
		}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if importsTime && p.cfg.enabled[ruleTimeNow] && p.isPkgCall(call, "time", "Now") {
				p.report(call.Pos(), ruleTimeNow,
					"time.Now is wall-clock nondeterminism; results depending on it will not replay")
			}
			if importsMathRand && p.cfg.enabled[ruleRand] {
				if name, banned := p.globalRandCall(call); banned {
					p.report(call.Pos(), ruleRand,
						fmt.Sprintf("rand.%s draws from the global math/rand source; use rand.New(rand.NewSource(seed)) for replayable results", name))
				}
			}
			return true
		})
	}
}

// checkRangeMap flags range statements over maps whose body feeds
// order-sensitive sinks: appends to a slice, channel sends, or fmt
// printing. An append target that is later passed to a sort call in the
// same function is considered re-canonicalized and not flagged.
func (p *pass) checkRangeMap(fn *ast.FuncDecl) {
	sorted := make(map[string]bool) // ExprString of slices sorted in this function
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		isSort := pkg.Name == "sort" || (pkg.Name == "slices" && strings.HasPrefix(sel.Sel.Name, "Sort"))
		if isSort {
			sorted[types.ExprString(call.Args[0])] = true
		}
		return true
	})

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if !p.isMapExpr(fn, rng.X) {
			return true
		}
		ast.Inspect(rng.Body, func(m ast.Node) bool {
			switch s := m.(type) {
			case *ast.SendStmt:
				p.report(rng.Pos(), ruleRangeMap,
					fmt.Sprintf("iteration over map %s sends on a channel in map order, which is nondeterministic",
						types.ExprString(rng.X)))
				return false
			case *ast.CallExpr:
				if id, ok := s.Fun.(*ast.Ident); ok && id.Name == "append" && len(s.Args) > 0 {
					target := types.ExprString(s.Args[0])
					if !sorted[target] {
						p.report(rng.Pos(), ruleRangeMap,
							fmt.Sprintf("iteration over map %s appends to %s in map order, which is nondeterministic (sort it afterwards or iterate a sorted key slice)",
								types.ExprString(rng.X), target))
					}
					return false
				}
				if sel, ok := s.Fun.(*ast.SelectorExpr); ok {
					if pkg, ok := sel.X.(*ast.Ident); ok && pkg.Name == "fmt" &&
						(strings.HasPrefix(sel.Sel.Name, "Print") || strings.HasPrefix(sel.Sel.Name, "Fprint")) {
						p.report(rng.Pos(), ruleRangeMap,
							fmt.Sprintf("iteration over map %s prints in map order, which is nondeterministic",
								types.ExprString(rng.X)))
						return false
					}
				}
			}
			return true
		})
		return true
	})
}

// isMapExpr reports whether the expression has map type, using full type
// information when available and declaration syntax otherwise.
func (p *pass) isMapExpr(fn *ast.FuncDecl, e ast.Expr) bool {
	if p.info != nil {
		if t := p.info.TypeOf(e); t != nil {
			_, ok := t.Underlying().(*types.Map)
			return ok
		}
		// Unresolved under a partial typecheck: fall through to syntax.
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	// Parameters and receivers with a literal map type.
	if fn.Recv != nil && fieldHasMapType(fn.Recv, id.Name) {
		return true
	}
	if fn.Type.Params != nil && fieldHasMapType(fn.Type.Params, id.Name) {
		return true
	}
	// Local declarations: var x map[...]..., x := make(map[...]...),
	// x := map[...]...{...}.
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ValueSpec:
			for i, name := range s.Names {
				if name.Name != id.Name {
					continue
				}
				if _, ok := s.Type.(*ast.MapType); ok {
					found = true
				} else if i < len(s.Values) && exprMakesMap(s.Values[i]) {
					found = true
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range s.Lhs {
				l, ok := lhs.(*ast.Ident)
				if !ok || l.Name != id.Name || i >= len(s.Rhs) {
					continue
				}
				if exprMakesMap(s.Rhs[i]) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// fieldHasMapType reports whether the field list declares name with a
// literal map type.
func fieldHasMapType(fields *ast.FieldList, name string) bool {
	for _, f := range fields.List {
		if _, ok := f.Type.(*ast.MapType); !ok {
			continue
		}
		for _, n := range f.Names {
			if n.Name == name {
				return true
			}
		}
	}
	return false
}

// exprMakesMap matches make(map[...]...) and map literal initializers.
func exprMakesMap(e ast.Expr) bool {
	switch v := e.(type) {
	case *ast.CallExpr:
		if id, ok := v.Fun.(*ast.Ident); ok && id.Name == "make" && len(v.Args) > 0 {
			_, ok := v.Args[0].(*ast.MapType)
			return ok
		}
	case *ast.CompositeLit:
		_, ok := v.Type.(*ast.MapType)
		return ok
	}
	return false
}

// isPkgCall matches pkg.Fn(...) where pkg resolves to the named package
// (by type information when available, by identifier otherwise).
func (p *pass) isPkgCall(call *ast.CallExpr, pkg, fn string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != fn {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || id.Name != pkg {
		return false
	}
	if p.info != nil {
		if pn, ok := p.info.Uses[id].(*types.PkgName); ok {
			return pn.Imported().Name() == pkg
		}
	}
	return true
}

// globalRandFuncs are the math/rand package-level functions backed by the
// shared global source. Constructors (New, NewSource) are fine: a seeded
// private source is exactly the replayable idiom.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
}

// globalRandCall matches rand.<global-source func>(...). Calls through a
// seeded *rand.Rand (rng.Intn) have a non-package receiver and never
// match, so the seeded idiom passes without annotation.
func (p *pass) globalRandCall(call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !globalRandFuncs[sel.Sel.Name] {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || id.Name != "rand" {
		return "", false
	}
	if p.info != nil {
		if obj, resolved := p.info.Uses[id]; resolved {
			pn, ok := obj.(*types.PkgName)
			if !ok || pn.Imported().Path() != "math/rand" {
				return "", false
			}
		}
	}
	return sel.Sel.Name, true
}
