package main

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// The enumswitch rule: a switch over a declared enum (a defined integer
// type with two or more constants of exactly that type) must either cover
// every declared constant or carry a default that actually handles the
// unexpected value. A default whose body only panics is an exhaustiveness
// assertion, not a handler — it is exactly the failure mode that hides a
// newly added obd.Stage or logic.GateType until the panic fires in
// production — so such switches are held to full coverage.
//
// False-positive policy: the rule needs type information (vettool and
// typechecking standalone runs have it; syntax-only fallback skips the
// rule). Switches over non-enum types, types with fewer than two
// constants, and switches with a genuine default are never flagged.
// Matching is by constant value, so aliased constants (A = B) count as
// covered when either name appears.

// enumSwitchInfo is the per-switch analysis shared by enumswitch and
// paniccontract (which exempts panics inside verified-exhaustive
// defaults).
type enumSwitchInfo struct {
	sw          *ast.SwitchStmt
	typeName    string   // display name of the enum type
	missing     []string // names of uncovered constants, declaration order
	defaultBody *ast.CaseClause
	panicOnly   bool // the default body is a single panic call
}

// analyzeEnumSwitch inspects one switch statement; ok is false when the
// statement is not a checkable enum switch.
func analyzeEnumSwitch(p *pass, sw *ast.SwitchStmt) (enumSwitchInfo, bool) {
	out := enumSwitchInfo{sw: sw}
	if p.info == nil || sw.Tag == nil {
		return out, false
	}
	tagType := p.info.TypeOf(sw.Tag)
	if tagType == nil {
		return out, false
	}
	named, ok := tagType.(*types.Named)
	if !ok {
		return out, false
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsInteger == 0 {
		return out, false
	}
	declPkg := named.Obj().Pkg()
	if declPkg == nil {
		return out, false // builtin-scoped type (e.g. error) — not an enum
	}
	// Every constant of exactly this named type, in declaration order.
	type enumConst struct {
		name string
		val  string
		pos  int
	}
	var consts []enumConst
	scope := declPkg.Scope()
	for _, name := range scope.Names() { // Names() is sorted: deterministic
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		consts = append(consts, enumConst{name: name, val: c.Val().ExactString(), pos: int(c.Pos())})
	}
	if len(consts) < 2 {
		return out, false
	}
	sort.Slice(consts, func(i, j int) bool { return consts[i].pos < consts[j].pos })

	covered := make(map[string]bool)
	for _, stmt := range sw.Body.List {
		clause, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if clause.List == nil {
			out.defaultBody = clause
			out.panicOnly = panicOnlyBody(clause.Body)
			continue
		}
		for _, expr := range clause.List {
			if tv, ok := p.info.Types[expr]; ok && tv.Value != nil {
				covered[tv.Value.ExactString()] = true
			}
		}
	}
	seenVal := make(map[string]bool)
	for _, c := range consts {
		if covered[c.val] || seenVal[c.val] {
			continue
		}
		seenVal[c.val] = true
		out.missing = append(out.missing, c.name)
	}
	if declPkg == p.pkg {
		out.typeName = named.Obj().Name()
	} else {
		out.typeName = declPkg.Name() + "." + named.Obj().Name()
	}
	return out, true
}

// panicOnlyBody reports whether the statement list is exactly one
// panic(...) call — the defensive-default idiom.
func panicOnlyBody(body []ast.Stmt) bool {
	if len(body) != 1 {
		return false
	}
	expr, ok := body[0].(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := expr.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

// findExhaustiveDefaults records the default-clause spans of enum
// switches that cover every constant, for paniccontract's exemption. It
// runs regardless of which rules are enabled so disabling enumswitch
// does not change paniccontract's verdicts.
func findExhaustiveDefaults(p *pass) []span {
	var spans []span
	if p.info == nil {
		return spans
	}
	for _, f := range p.files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok {
				return true
			}
			info, ok := analyzeEnumSwitch(p, sw)
			if ok && len(info.missing) == 0 && info.defaultBody != nil {
				spans = append(spans, span{pos: info.defaultBody.Pos(), end: info.defaultBody.End()})
			}
			return true
		})
	}
	return spans
}

// checkEnumSwitch runs the rule over one file.
func (p *pass) checkEnumSwitch(f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		sw, ok := n.(*ast.SwitchStmt)
		if !ok {
			return true
		}
		info, ok := analyzeEnumSwitch(p, sw)
		if !ok || len(info.missing) == 0 {
			return true
		}
		if info.defaultBody != nil && !info.panicOnly {
			return true // a genuine default handles future values
		}
		miss := strings.Join(info.missing, ", ")
		if info.defaultBody == nil {
			p.report(sw.Pos(), ruleEnumSwitch,
				fmt.Sprintf("switch over %s does not cover %s and has no default", info.typeName, miss))
		} else {
			p.report(sw.Pos(), ruleEnumSwitch,
				fmt.Sprintf("switch over %s does not cover %s; its default only panics, which hides newly added values until they crash", info.typeName, miss))
		}
		return true
	})
}
