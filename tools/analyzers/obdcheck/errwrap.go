package main

import (
	"go/ast"
	"go/types"
	"strings"
)

// The errwrap rule: the typed-error contract (PR 3/PR 4) promises
// callers matchable errors — errors.Is/As must work across every
// exported boundary. Inside the body of an exported function or method
// of a non-exempt, non-main package this flags:
//
//   - errors.New(...) — an anonymous leaf error no caller can match;
//     sentinel `var ErrFoo = errors.New(...)` at package level is the
//     approved idiom and stays legal (the rule is lexical to exported
//     bodies);
//   - fmt.Errorf(...) whose format verb for an error operand is not %w —
//     formatting an error with %v/%s discards the chain that errors.Is
//     needs;
//   - fmt.Errorf(...) with no error operand and no %w — a bare
//     stringly-typed leaf at an exported boundary; define a typed error
//     (the *ParseError pattern) or wrap a sentinel.
//
// Scope: the contract applies to typed-error packages — those that have
// opted in by declaring an exported FooError type or an exported ErrFoo
// sentinel anywhere in the package. Wholly stringly-typed packages are
// grandfathered until their first typed error appears (at which point
// every exported boundary is held to the standard), package main is out
// of scope (a binary's errors go to stderr, not to matchers), and
// -errwrap.exempt removes path segments the same way paniccontract's
// exemption does.
//
// False-positive policy: one-sided and lexical. Helpers called by
// exported functions are not chased (a bare error built in an unexported
// helper is caught when the helper gets promoted, or by review), format
// strings that are not literals are skipped, and error-operand detection
// degrades from go/types to the err-ish identifier-name heuristic when
// type information is missing. Deliberate leaf errors take a reasoned
// //obdcheck:allow errwrap.

// checkErrWrap runs the errwrap arms over one file.
func (p *pass) checkErrWrap(f *ast.File) {
	if f.Name.Name == "main" || pathHasSegment(p.pkgPath, p.cfg.errwrapExempt) {
		return
	}
	if !p.typedErrorPackage() {
		return
	}
	imports := importTable(f)
	errorsName, fmtName := "", ""
	for name, path := range imports {
		switch path {
		case "errors":
			errorsName = name
		case "fmt":
			fmtName = name
		}
	}
	if errorsName == "" && fmtName == "" {
		return
	}
	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Body == nil || !fd.Name.IsExported() {
			continue
		}
		boundary := exportedName(fd)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			base, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			switch {
			case base.Name == errorsName && sel.Sel.Name == "New":
				p.report(call.Pos(), ruleErrWrap,
					"errors.New inside exported "+boundary+" builds an unmatchable leaf error; define a typed error or wrap a package sentinel with %w")
			case base.Name == fmtName && sel.Sel.Name == "Errorf":
				p.checkErrorf(call, boundary)
			}
			return true
		})
	}
}

// checkErrorf audits one fmt.Errorf call inside an exported body.
func (p *pass) checkErrorf(call *ast.CallExpr, boundary string) {
	if len(call.Args) == 0 {
		return
	}
	lit, ok := call.Args[0].(*ast.BasicLit)
	if !ok {
		return // non-literal format: cannot judge, skip (one-sided)
	}
	wraps := strings.Contains(lit.Value, "%w")
	hasErrOperand := false
	for _, arg := range call.Args[1:] {
		if p.errorOperand(arg) {
			hasErrOperand = true
			break
		}
	}
	switch {
	case hasErrOperand && !wraps:
		p.report(call.Pos(), ruleErrWrap,
			"fmt.Errorf in exported "+boundary+" formats an error operand without %w, discarding the chain errors.Is needs")
	case !hasErrOperand && !wraps:
		p.report(call.Pos(), ruleErrWrap,
			"bare fmt.Errorf in exported "+boundary+" returns a stringly-typed error; define a typed error or wrap a package sentinel with %w")
	}
}

// typedErrorPackage reports whether the package has adopted the
// typed-error contract: it declares an exported type named ...Error or
// an exported Err... sentinel var.
func (p *pass) typedErrorPackage() bool {
	for _, f := range p.files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && strings.HasSuffix(s.Name.Name, "Error") {
						return true
					}
				case *ast.ValueSpec:
					for _, name := range s.Names {
						if name.IsExported() && strings.HasPrefix(name.Name, "Err") {
							return true
						}
					}
				}
			}
		}
	}
	return false
}

// errorOperand reports whether the argument is an error value: typed
// when resolvable, otherwise by the err-ish identifier heuristic.
func (p *pass) errorOperand(arg ast.Expr) bool {
	if p.info != nil {
		if tv, ok := p.info.Types[arg]; ok && tv.Type != nil {
			if isErrorType(tv.Type) {
				return true
			}
			// Resolved to a non-error: trust the types, except through
			// interface{} (a formatted any could still hold an error —
			// fall through to the name heuristic).
			if _, isIface := tv.Type.Underlying().(*types.Interface); !isIface {
				return false
			}
		}
	}
	id, ok := arg.(*ast.Ident)
	if !ok {
		if sel, isSel := arg.(*ast.SelectorExpr); isSel {
			id = sel.Sel
		} else {
			return false
		}
	}
	lower := strings.ToLower(id.Name)
	return lower == "err" || strings.HasSuffix(lower, "err") || strings.HasPrefix(lower, "err")
}

// isErrorType reports whether t implements the error interface.
func isErrorType(t types.Type) bool {
	if named, ok := t.(*types.Named); ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil {
		return true
	}
	iface, ok := t.Underlying().(*types.Interface)
	if ok {
		for i := 0; i < iface.NumMethods(); i++ {
			m := iface.Method(i)
			if m.Name() == "Error" {
				sig, _ := m.Type().(*types.Signature)
				if sig != nil && sig.Params().Len() == 0 && sig.Results().Len() == 1 {
					return true
				}
			}
		}
		return false
	}
	// Concrete types: look for an Error() string method.
	ms := types.NewMethodSet(types.NewPointer(t))
	for i := 0; i < ms.Len(); i++ {
		m := ms.At(i).Obj()
		if m.Name() == "Error" {
			sig, _ := m.Type().(*types.Signature)
			if sig != nil && sig.Params().Len() == 0 && sig.Results().Len() == 1 {
				return true
			}
		}
	}
	return false
}
