package main

import (
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
)

// The facadesync rule: the public facade (the gobd_*.go files PR 5 split
// out) is a delegation layer — every exported symbol is an alias, a var
// binding, a const re-export or a thin wrapper over the internal
// packages, and the api.golden export-lock test pins the symbol set.
// What the export lock cannot see is the two ways the facade rots:
//
//   1. An exported facade symbol that stops delegating — a type declared
//     in the facade instead of aliased, or a var/const/function whose
//     definition never references an internal package. Logic living in
//     the facade escapes the internal packages' tests and contracts.
//   2. A "// Deprecated:" alias whose doc no longer names a live
//     replacement: the deprecation text is prose, so renaming the
//     replacement compiles fine while the migration hint goes stale.
//
// The rule audits every file whose basename matches gobd*.go: each
// exported declaration must reference at least one import with an
// "internal" path segment (delegation), and each Deprecated comment
// must say "use <Name>" where <Name> is an exported symbol declared in
// the same package.
//
// False-positive policy: syntactic on purpose — the facade package is
// the module root, whose internal imports cannot resolve in standalone
// runs. A facade symbol that is deliberately self-contained (doc-only
// helpers, pure re-exports of stdlib) takes a reasoned
// //obdcheck:allow facadesync.

var deprecatedUseRE = regexp.MustCompile(`[Uu]se ([A-Z][A-Za-z0-9]*)`)

// checkFacadeSync audits the facade files of the package.
func (p *pass) checkFacadeSync() {
	exported := p.exportedDeclNames()
	for _, f := range p.files {
		base := filepath.Base(p.fset.Position(f.Pos()).Filename)
		if !strings.HasPrefix(base, "gobd") || !strings.HasSuffix(base, ".go") {
			continue
		}
		imports := importTable(f)
		internal := make(map[string]bool)
		for name, path := range imports {
			if pathHasSegment(path, []string{"internal"}) {
				internal[name] = true
			}
		}
		for _, d := range f.Decls {
			switch decl := d.(type) {
			case *ast.FuncDecl:
				if !decl.Name.IsExported() || decl.Body == nil {
					continue
				}
				if !referencesInternal(decl.Body, internal) {
					p.report(decl.Pos(), ruleFacadeSync,
						"exported facade func "+decl.Name.Name+" does not delegate to an internal package; move the logic into internal/ and wrap it here")
				}
				p.checkDeprecatedDoc(decl.Doc, decl.Pos(), decl.Name.Name, exported)
			case *ast.GenDecl:
				p.checkFacadeGenDecl(decl, internal, exported)
			}
		}
	}
}

// checkFacadeGenDecl audits one type/var/const declaration group in a
// facade file.
func (p *pass) checkFacadeGenDecl(decl *ast.GenDecl, internal map[string]bool, exported map[string]bool) {
	for _, spec := range decl.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if !s.Name.IsExported() {
				continue
			}
			doc := s.Doc
			if doc == nil {
				doc = decl.Doc
			}
			if !s.Assign.IsValid() {
				p.report(s.Pos(), ruleFacadeSync,
					"exported facade type "+s.Name.Name+" is declared here instead of aliased; define it in internal/ and alias it")
			} else if !referencesInternal(s.Type, internal) {
				p.report(s.Pos(), ruleFacadeSync,
					"exported facade alias "+s.Name.Name+" does not resolve to an internal package symbol")
			}
			p.checkDeprecatedDoc(doc, s.Pos(), s.Name.Name, exported)
		case *ast.ValueSpec:
			doc := s.Doc
			if doc == nil {
				doc = decl.Doc
			}
			hasExported := false
			for _, name := range s.Names {
				if name.IsExported() {
					hasExported = true
				}
			}
			if !hasExported {
				continue
			}
			delegates := false
			for _, v := range s.Values {
				if referencesInternal(v, internal) {
					delegates = true
				}
			}
			if s.Type != nil && referencesInternal(s.Type, internal) {
				delegates = true
			}
			if !delegates {
				p.report(s.Pos(), ruleFacadeSync,
					"exported facade binding "+s.Names[0].Name+" does not delegate to an internal package symbol")
			}
			p.checkDeprecatedDoc(doc, s.Pos(), s.Names[0].Name, exported)
		}
	}
}

// checkDeprecatedDoc enforces arm 2: a Deprecated comment must name a
// live exported replacement.
func (p *pass) checkDeprecatedDoc(doc *ast.CommentGroup, pos token.Pos, name string, exported map[string]bool) {
	if doc == nil {
		return
	}
	text := doc.Text()
	idx := strings.Index(text, "Deprecated:")
	if idx < 0 {
		return
	}
	m := deprecatedUseRE.FindStringSubmatch(text[idx:])
	if m == nil {
		p.report(pos, ruleFacadeSync,
			"Deprecated facade symbol "+name+" does not say which replacement to use; write \"Deprecated: use <Name>\"")
		return
	}
	if !exported[m[1]] {
		p.report(pos, ruleFacadeSync,
			"Deprecated facade symbol "+name+" points at "+m[1]+", which is not declared in this package; name a live replacement")
	}
}

// referencesInternal reports whether the expression tree contains a
// selector rooted at one of the internal import names.
func referencesInternal(node ast.Node, internal map[string]bool) bool {
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if found {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if base, ok := sel.X.(*ast.Ident); ok && internal[base.Name] {
			found = true
			return false
		}
		return true
	})
	return found
}

// exportedDeclNames collects every exported top-level name declared in
// the package — the liveness set for Deprecated replacements.
func (p *pass) exportedDeclNames() map[string]bool {
	names := make(map[string]bool)
	for _, f := range p.files {
		for _, d := range f.Decls {
			switch decl := d.(type) {
			case *ast.FuncDecl:
				if decl.Recv == nil && decl.Name.IsExported() {
					names[decl.Name.Name] = true
				}
			case *ast.GenDecl:
				for _, spec := range decl.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() {
							names[s.Name.Name] = true
						}
					case *ast.ValueSpec:
						for _, name := range s.Names {
							if name.IsExported() {
								names[name.Name] = true
							}
						}
					}
				}
			}
		}
	}
	return names
}
