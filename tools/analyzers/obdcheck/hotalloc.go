package main

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// The hotalloc rule: the event grader's contract (DESIGN.md §11) is
// zero allocations per graded fault, enforced dynamically by
// testing.AllocsPerRun. This rule enforces it statically: a function,
// method or function literal marked //obdcheck:hotpath (in its doc
// comment, or on the line immediately above a literal) may not contain
//
//   - make(...) or new(...) — including the pooled scratch's own grow
//     path, which therefore must live in a separate unmarked function;
//   - append into a slice freshly declared inside the marked body
//     (`var x []T` then append(x, ...)) — growth of a zero-capacity
//     slice always allocates. Appends into parameters, struct fields,
//     reslices and indexed storage pass: that is exactly the pooled
//     amortized-growth idiom the hot path uses;
//   - map or slice composite literals, and &T{} literals (escape to the
//     heap by construction);
//   - function literals (closure environments allocate);
//   - go statements (goroutine stacks allocate);
//   - boxing calls: passing non-interface values into ...interface{}
//     variadics (fmt and friends) converts to interface{} and escapes.
//     With type information the check is precise; without it, calls
//     into the fmt package are flagged.
//
// False-positive policy: the rule is per-marked-function and purely
// local — it does not chase callees, so a marked function calling an
// allocating helper is the AllocsPerRun test's job to catch, not this
// rule's. Value struct literals (T{...}) pass: they stay on the stack
// unless escape analysis says otherwise, and flagging them would ban
// ordinary struct assembly. Anything deliberate (a slow path behind a
// once-guard) takes a reasoned //obdcheck:allow hotalloc.

const hotpathMarker = "obdcheck:hotpath"

// checkHotAlloc finds the marked functions and literals and audits their
// bodies.
func (p *pass) checkHotAlloc() {
	for _, f := range p.files {
		markerLines := hotpathMarkerLines(p, f)
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// The marker is a directive comment, which CommentGroup.Text
			// strips — scan the raw comment list.
			marked := false
			if fd.Doc != nil {
				for _, c := range fd.Doc.List {
					if strings.Contains(c.Text, hotpathMarker) {
						marked = true
					}
				}
			}
			if marked {
				p.auditHotBody(fd.Name.Name, fd.Body)
			}
			// Marked literals inside this declaration.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				lit, ok := n.(*ast.FuncLit)
				if !ok {
					return true
				}
				line := p.fset.Position(lit.Pos()).Line
				if markerLines[line] || markerLines[line-1] {
					p.auditHotBody("func literal", lit.Body)
					return false // its body is audited; don't double-report nested literals
				}
				return true
			})
		}
	}
}

// hotpathMarkerLines maps the end line of every marker comment, for
// attaching markers to function literals. (The marker string itself is
// spelled via the constant here: naming it literally in this doc would
// mark this very function.)
func hotpathMarkerLines(p *pass, f *ast.File) map[int]bool {
	lines := make(map[int]bool)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.Contains(c.Text, hotpathMarker) {
				lines[p.fset.Position(c.End()).Line] = true
			}
		}
	}
	return lines
}

// auditHotBody reports every allocation site in one marked body.
func (p *pass) auditHotBody(name string, body *ast.BlockStmt) {
	freshSlices := freshNilSlices(body)
	msg := func(what string) string {
		return "hotpath " + name + " " + what + "; hoist it out of the marked function or pool it"
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.CallExpr:
			if id, ok := node.Fun.(*ast.Ident); ok {
				switch id.Name {
				case "make":
					p.report(node.Pos(), ruleHotAlloc, msg("allocates with make"))
					return true
				case "new":
					p.report(node.Pos(), ruleHotAlloc, msg("allocates with new"))
					return true
				case "append":
					if len(node.Args) > 0 {
						if dst, ok := node.Args[0].(*ast.Ident); ok && freshSlices[dst.Name] {
							p.report(node.Pos(), ruleHotAlloc, msg("appends into the fresh nil slice "+dst.Name))
						}
					}
					return true
				}
			}
			if p.boxingCall(node) {
				p.report(node.Pos(), ruleHotAlloc, msg("boxes its arguments into interface{}"))
			}
		case *ast.CompositeLit:
			switch node.Type.(type) {
			case *ast.MapType:
				p.report(node.Pos(), ruleHotAlloc, msg("allocates a map literal"))
			case *ast.ArrayType:
				if node.Type.(*ast.ArrayType).Len == nil {
					p.report(node.Pos(), ruleHotAlloc, msg("allocates a slice literal"))
				}
			}
		case *ast.UnaryExpr:
			if node.Op == token.AND {
				if _, ok := node.X.(*ast.CompositeLit); ok {
					p.report(node.Pos(), ruleHotAlloc, msg("heap-allocates a &composite literal"))
				}
			}
		case *ast.FuncLit:
			p.report(node.Pos(), ruleHotAlloc, msg("creates a closure"))
			return false // the literal's own body is out of scope
		case *ast.GoStmt:
			p.report(node.Pos(), ruleHotAlloc, msg("spawns a goroutine"))
		}
		return true
	})
}

// freshNilSlices collects names declared as `var x []T` (no initializer)
// in the body: appends into those always grow from zero capacity.
func freshNilSlices(body *ast.BlockStmt) map[string]bool {
	fresh := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		decl, ok := n.(*ast.DeclStmt)
		if !ok {
			return true
		}
		gd, ok := decl.Decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			return true
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok || len(vs.Values) > 0 {
				continue
			}
			if at, ok := vs.Type.(*ast.ArrayType); !ok || at.Len != nil {
				continue
			}
			for _, id := range vs.Names {
				fresh[id.Name] = true
			}
		}
		return true
	})
	return fresh
}

// boxingCall reports whether the call passes non-interface values into an
// ...interface{} variadic. Typed when possible; otherwise any call into
// the fmt package counts.
func (p *pass) boxingCall(call *ast.CallExpr) bool {
	var id *ast.Ident
	var sel *ast.SelectorExpr
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		sel = fun
		id = fun.Sel
	default:
		return false
	}
	if p.info != nil {
		if fn, ok := p.info.Uses[id].(*types.Func); ok {
			sig, _ := fn.Type().(*types.Signature)
			if sig == nil || !sig.Variadic() {
				return false
			}
			last := sig.Params().At(sig.Params().Len() - 1)
			slice, ok := last.Type().(*types.Slice)
			if !ok {
				return false
			}
			iface, ok := slice.Elem().Underlying().(*types.Interface)
			if !ok || !iface.Empty() {
				return false
			}
			// Only boxing if some variadic argument is not already an
			// interface value.
			fixed := sig.Params().Len() - 1
			for i := fixed; i < len(call.Args); i++ {
				tv, ok := p.info.Types[call.Args[i]]
				if !ok {
					return true // unresolved: assume the worst in a hot path
				}
				if _, isIface := tv.Type.Underlying().(*types.Interface); !isIface {
					return true
				}
			}
			return false
		}
	}
	// Syntactic fallback: fmt.* calls box.
	if sel != nil {
		if base, ok := sel.X.(*ast.Ident); ok && base.Name == "fmt" {
			return true
		}
	}
	return false
}
