// Command obdcheck is the repo's multi-rule static-analysis suite,
// usable as a go vet -vettool. It grew out of detlint (PR 2) and
// enforces the contracts the reproduction's correctness rests on, over
// the whole module rather than just internal/atpg:
//
//   - rangemap, timenow, rand: the determinism contract — no map-order
//     dependent output, no wall clock, no global math/rand (a seeded
//     rand.New(rand.NewSource(seed)) passes);
//   - enumswitch: the exhaustiveness contract — switches over declared
//     enums (logic.GateType, obd.Stage, fault.NetKind, ...) cover every
//     constant or carry a non-panicking default;
//   - paniccontract: the typed-error contract — no panic reachable from
//     exported API in migrated packages (analog layer exempt via
//     -paniccontract.exempt until it migrates);
//   - schedmisuse: the scheduler contract — ForEach/ForEachCtx closures
//     write only their own index slot;
//   - allowcheck: the suppressions themselves — unknown rules and
//     missing reasons are findings, never silently ignored, and
//     -staleallows reports annotations that no longer suppress anything.
//
// Findings are suppressed by "//obdcheck:allow <rule> — <reason>" on the
// same or the preceding line; the reason is mandatory. The legacy
// "//detlint:allow" form still suppresses but is reported as deprecated.
//
// A baseline file (-baseline findings.json, written by -writebaseline)
// tolerates recorded legacy findings while new ones keep failing CI.
//
// The tool speaks cmd/go's vettool protocol (-V=full, -flags, and a
// *.cfg unit file) directly on the standard library, because the usual
// golang.org/x/tools unitchecker scaffolding is not vendored here. It
// also runs standalone over directories (with a best-effort local
// typecheck, falling back to syntactic analysis where imports cannot be
// resolved): obdcheck ./internal/atpg ./internal/mission
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	args := os.Args[1:]
	if len(args) == 1 && strings.HasPrefix(args[0], "-V") {
		printVersion()
		return
	}
	if len(args) == 1 && args[0] == "-flags" {
		printFlagDefs()
		return
	}
	cfg, rest, err := parseFlags(args)
	if err != nil {
		os.Exit(1) // flag package already printed the usage error
	}
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		os.Exit(vetUnit(cfg, rest[0]))
	}
	if len(rest) == 0 {
		fmt.Fprintln(os.Stderr, "usage: obdcheck [flags] <dir>... (or via go vet -vettool=obdcheck)")
		os.Exit(1)
	}
	os.Exit(standalone(cfg, rest))
}

// parseFlags builds the run configuration from the command line.
func parseFlags(args []string) (*config, []string, error) {
	cfg := defaultConfig()
	fs := flag.NewFlagSet("obdcheck", flag.ContinueOnError)
	ruleOn := make(map[string]*bool, len(registry))
	for _, r := range registry {
		ruleOn[r.Name] = fs.Bool(r.Name, true, "enable the "+r.Name+" rule: "+r.Doc)
	}
	format := fs.String("format", "text", "output format: text (stderr, vet style) or json (stdout)")
	baselinePath := fs.String("baseline", "", "baseline file of tolerated findings; only new findings fail")
	writeBase := fs.String("writebaseline", "", "write current findings to this baseline file and exit clean")
	stale := fs.Bool("staleallows", false, "report //obdcheck:allow annotations that suppress nothing")
	exempt := fs.String("paniccontract.exempt", strings.Join(cfg.panicExempt, ","),
		"comma-separated package-path segments exempt from paniccontract")
	errExempt := fs.String("errwrap.exempt", strings.Join(cfg.errwrapExempt, ","),
		"comma-separated package-path segments exempt from errwrap")
	factsModule := fs.String("xpkg.module", cfg.factsModule,
		"import-path prefix whose packages exchange cross-package panic facts")
	if err := fs.Parse(args); err != nil {
		return nil, nil, err
	}
	for _, r := range registry {
		cfg.enabled[r.Name] = *ruleOn[r.Name]
	}
	cfg.format = *format
	cfg.baselinePath = *baselinePath
	cfg.writeBaseline = *writeBase
	cfg.staleAllows = *stale
	cfg.factsModule = *factsModule
	cfg.panicExempt = splitSegments(*exempt)
	cfg.errwrapExempt = splitSegments(*errExempt)
	return cfg, fs.Args(), nil
}

// splitSegments parses a comma-separated exemption list.
func splitSegments(s string) []string {
	var out []string
	for _, seg := range strings.Split(s, ",") {
		if seg = strings.TrimSpace(seg); seg != "" {
			out = append(out, seg)
		}
	}
	return out
}

// printFlagDefs answers cmd/go's -flags handshake: a JSON list of the
// flags the vettool accepts, so go vet forwards them.
func printFlagDefs() {
	type flagDef struct {
		Name  string
		Bool  bool
		Usage string
	}
	var defs []flagDef
	for _, r := range registry {
		defs = append(defs, flagDef{Name: r.Name, Bool: true, Usage: "enable the " + r.Name + " rule"})
	}
	defs = append(defs,
		flagDef{Name: "format", Bool: false, Usage: "output format: text or json"},
		flagDef{Name: "baseline", Bool: false, Usage: "baseline file of tolerated findings"},
		flagDef{Name: "writebaseline", Bool: false, Usage: "write current findings as a baseline"},
		flagDef{Name: "staleallows", Bool: true, Usage: "report suppressions that suppress nothing"},
		flagDef{Name: "paniccontract.exempt", Bool: false, Usage: "package segments exempt from paniccontract"},
		flagDef{Name: "errwrap.exempt", Bool: false, Usage: "package segments exempt from errwrap"},
		flagDef{Name: "xpkg.module", Bool: false, Usage: "import-path prefix exchanging panic facts"},
	)
	data, _ := json.Marshal(defs)
	fmt.Println(string(data))
}

// printVersion answers cmd/go's -V=full tool-identity handshake: the
// output doubles as the tool's build ID, so it hashes the executable the
// same way the unitchecker convention does.
func printVersion() {
	h := sha256.New()
	if f, err := os.Open(os.Args[0]); err == nil {
		io.Copy(h, f)
		f.Close()
	}
	fmt.Printf("%s version devel buildID=%x\n", os.Args[0], h.Sum(nil))
}

// vetConfig mirrors the JSON unit file cmd/go hands a vettool per
// package.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vetUnit analyzes one vet unit. Exit codes follow the vettool contract:
// 0 clean, nonzero with file:line:col messages on stderr otherwise.
func vetUnit(cfg *config, cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "obdcheck: %v\n", err)
		return 1
	}
	var unit vetConfig
	if err := json.Unmarshal(data, &unit); err != nil {
		fmt.Fprintf(os.Stderr, "obdcheck: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// Only module packages exchange panic facts: the cross-package chains
	// the contract cares about are module-internal, and parsing the whole
	// stdlib during VetxOnly dependency passes would be pure waste.
	wantFacts := cfg.factsModule != "" && (unit.ImportPath == cfg.factsModule ||
		strings.HasPrefix(unit.ImportPath, cfg.factsModule+"/"))
	if unit.VetxOnly && !wantFacts {
		// cmd/go expects the facts file to exist regardless.
		if unit.VetxOutput != "" {
			if err := os.WriteFile(unit.VetxOutput, nil, 0666); err != nil {
				fmt.Fprintf(os.Stderr, "obdcheck: %v\n", err)
				return 1
			}
		}
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range unit.GoFiles {
		if strings.HasSuffix(name, "_test.go") {
			continue // the contracts govern shipped code only
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintf(os.Stderr, "obdcheck: %v\n", err)
			return 1
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		if unit.VetxOutput != "" {
			if err := os.WriteFile(unit.VetxOutput, nil, 0666); err != nil {
				fmt.Fprintf(os.Stderr, "obdcheck: %v\n", err)
				return 1
			}
		}
		return 0
	}

	info, pkg := typecheckUnit(fset, files, &unit)
	p := newPass(cfg, fset, files, info, pkg, unit.ImportPath)
	p.deps = readVetxFacts(&unit)
	p.prepare()

	// Publish this unit's facts for downstream units before reporting, so
	// a diagnostic failure does not starve dependents of facts.
	if unit.VetxOutput != "" {
		data, err := json.Marshal(p.facts())
		if err == nil {
			err = os.WriteFile(unit.VetxOutput, data, 0666)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "obdcheck: %v\n", err)
			return 1
		}
	}
	if unit.VetxOnly {
		return 0 // dependency pass: facts only, no diagnostics wanted
	}
	if info == nil && unit.SucceedOnTypecheckFailure {
		return 0
	}
	findings := p.run()
	return finish(cfg, findings)
}

// readVetxFacts loads the panic facts of the unit's imports from the
// vetx files cmd/go hands over. Empty or missing files mean "no known
// panics" — the rule stays one-sided.
func readVetxFacts(unit *vetConfig) map[string]*pkgFacts {
	if len(unit.PackageVetx) == 0 {
		return nil
	}
	deps := make(map[string]*pkgFacts, len(unit.PackageVetx))
	for path, file := range unit.PackageVetx {
		data, err := os.ReadFile(file)
		if err != nil || len(data) == 0 {
			continue
		}
		var facts pkgFacts
		if json.Unmarshal(data, &facts) != nil || len(facts.Panics) == 0 {
			continue
		}
		deps[path] = &facts
	}
	return deps
}

// typecheckUnit resolves the unit against the export data cmd/go
// supplied. The returned info may be partially filled when some files
// fail to resolve; the rules degrade per-expression.
func typecheckUnit(fset *token.FileSet, files []*ast.File, unit *vetConfig) (*types.Info, *types.Package) {
	compilerImporter := importer.ForCompiler(fset, unit.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := unit.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(path string) (*types.Package, error) {
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		if mapped, ok := unit.ImportMap[path]; ok {
			path = mapped
		}
		return compilerImporter.Import(path)
	})
	tc := &types.Config{
		Importer: imp,
		Error:    func(error) {}, // collect as many files as possible
	}
	info := newInfo()
	pkg, err := tc.Check(unit.ImportPath, fset, files, info)
	if err != nil && pkg == nil {
		return nil, nil
	}
	return info, pkg
}

func newInfo() *types.Info {
	return &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Uses:  make(map[*ast.Ident]types.Object),
		Defs:  make(map[*ast.Ident]types.Object),
	}
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// standalone walks directories, groups the non-test .go files by
// directory (package), typechecks each group best-effort with the
// source importer (stdlib imports resolve; module-internal ones degrade
// to syntactic analysis) and runs the rules.
func standalone(cfg *config, dirs []string) int {
	pkgs := make(map[string][]string) // dir -> files
	for _, dir := range dirs {
		err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			pkgDir := filepath.Dir(path)
			pkgs[pkgDir] = append(pkgs[pkgDir], path)
			return nil
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "obdcheck: %v\n", err)
			return 1
		}
	}
	pkgDirs := make([]string, 0, len(pkgs))
	for dir := range pkgs {
		pkgDirs = append(pkgDirs, dir)
	}
	sort.Strings(pkgDirs)

	passes := make([]*pass, 0, len(pkgDirs))
	for _, dir := range pkgDirs {
		fset := token.NewFileSet()
		var files []*ast.File
		sort.Strings(pkgs[dir])
		for _, path := range pkgs[dir] {
			f, perr := parser.ParseFile(fset, path, nil, parser.ParseComments)
			if perr != nil {
				fmt.Fprintf(os.Stderr, "obdcheck: %v\n", perr)
				return 1
			}
			files = append(files, f)
		}
		if len(files) == 0 {
			continue
		}
		info, pkg := typecheckLoose(fset, files, dir)
		p := newPass(cfg, fset, files, info, pkg, filepath.ToSlash(dir))
		p.prepare()
		passes = append(passes, p)
	}
	all := analyzePackages(passes)
	return finish(cfg, all)
}

// analyzePackages runs the prepared passes with cross-package panic
// facts: a fixpoint over the whole group (standalone mode has no
// dependency order from cmd/go, and directory trees may even contain
// import cycles as far as the syntactic resolver can tell), then the
// rule runs. Fact lookups match import paths to analyzed directories by
// path suffix — see (*pass).depFact.
func analyzePackages(passes []*pass) []finding {
	facts := make(map[string]*pkgFacts, len(passes))
	for changed := true; changed; {
		changed = false
		for _, p := range passes {
			p.deps = facts
			next := p.facts()
			if !next.equal(facts[p.pkgPath]) {
				facts[p.pkgPath] = next
				changed = true
			}
		}
	}
	var all []finding
	for _, p := range passes {
		p.deps = facts
		all = append(all, p.run()...)
	}
	return all
}

// typecheckLoose typechecks a standalone package with the source
// importer, tolerating unresolved imports (module-internal paths are not
// resolvable outside the build): the info is partial and rules degrade
// gracefully.
func typecheckLoose(fset *token.FileSet, files []*ast.File, path string) (*types.Info, *types.Package) {
	tc := &types.Config{
		Importer: importer.ForCompiler(fset, "source", nil),
		Error:    func(error) {}, // keep going on unresolved imports
	}
	info := newInfo()
	pkg, err := tc.Check(path, fset, files, info)
	if err != nil && pkg == nil {
		return nil, nil
	}
	return info, pkg
}

// finish applies the baseline, emits the findings and picks the exit
// code (0 clean, 2 findings, 1 operational error).
func finish(cfg *config, findings []finding) int {
	if cfg.writeBaseline != "" {
		if err := writeBaselineFile(cfg.writeBaseline, findings); err != nil {
			fmt.Fprintf(os.Stderr, "obdcheck: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "obdcheck: wrote %d finding(s) to baseline %s\n", len(findings), cfg.writeBaseline)
		return 0
	}
	if cfg.baselinePath != "" {
		base, err := loadBaseline(cfg.baselinePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			return 1
		}
		findings = base.filter(findings)
	}
	emit(cfg, findings)
	if len(findings) > 0 {
		return 2
	}
	return 0
}
