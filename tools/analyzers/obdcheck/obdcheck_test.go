package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// loadFixturePass parses and prepares one testdata/src package.
func loadFixturePass(t *testing.T, cfg *config, dir string) *pass {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var paths []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".go") {
			paths = append(paths, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(paths)
	fset := token.NewFileSet()
	var files []*ast.File
	for _, path := range paths {
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	info, pkg := typecheckLoose(fset, files, dir)
	if info == nil {
		t.Fatalf("fixture %s failed to typecheck entirely", dir)
	}
	p := newPass(cfg, fset, files, info, pkg, filepath.ToSlash(dir))
	p.prepare()
	return p
}

// runFixtureDirs analyzes the fixture packages together — the same
// cross-package facts fixpoint standalone mode runs — and returns the
// combined findings.
func runFixtureDirs(t *testing.T, cfg *config, dirs ...string) []finding {
	t.Helper()
	passes := make([]*pass, 0, len(dirs))
	for _, dir := range dirs {
		passes = append(passes, loadFixturePass(t, cfg, dir))
	}
	return analyzePackages(passes)
}

// runFixture analyzes one testdata/src package with the given config and
// returns its findings.
func runFixture(t *testing.T, cfg *config, dir string) []finding {
	t.Helper()
	return runFixtureDirs(t, cfg, dir)
}

// onlyRules returns a config with exactly the named rules enabled.
func onlyRules(names ...string) *config {
	cfg := defaultConfig()
	for _, r := range registry {
		cfg.enabled[r.Name] = false
	}
	for _, n := range names {
		cfg.enabled[n] = true
	}
	return cfg
}

// render prints findings one per line with basename-relative paths so the
// golden files do not depend on the checkout location.
func render(fs []finding) string {
	var b strings.Builder
	for _, f := range fs {
		fmt.Fprintf(&b, "%s:%d:%d: %s [%s]\n", filepath.Base(f.File), f.Line, f.Col, f.Msg, f.Rule)
	}
	return b.String()
}

// TestRuleGoldens runs each rule over its fixture package and compares
// against the golden file; regenerate with go test -run Goldens -update.
// The disabled subtest proves each fixture's findings come from the rule
// under test: with the rule off they must vanish.
func TestRuleGoldens(t *testing.T) {
	cases := []struct {
		rule  string
		name  string   // fixture/golden name; defaults to the rule
		dirs  []string // fixture dirs; defaults to testdata/src/<name>
		extra []string // companion rules the fixture needs enabled
	}{
		{rule: ruleRangeMap},
		{rule: ruleTimeNow},
		{rule: ruleRand},
		{rule: ruleEnumSwitch},
		{rule: rulePanicContract},
		{rule: rulePanicContract, name: "panicxpkg", dirs: []string{
			filepath.Join("testdata", "src", "panicxpkg", "inner"),
			filepath.Join("testdata", "src", "panicxpkg", "outer"),
		}},
		{rule: ruleSchedMisuse},
		{rule: ruleCtxFlow},
		{rule: ruleHotAlloc},
		{rule: ruleErrWrap},
		{rule: ruleFacadeSync},
		{rule: ruleAllowCheck, extra: []string{ruleTimeNow}},
	}
	for _, c := range cases {
		name := c.name
		if name == "" {
			name = c.rule
		}
		dirs := c.dirs
		if len(dirs) == 0 {
			dirs = []string{filepath.Join("testdata", "src", name)}
		}
		t.Run(name, func(t *testing.T) {
			cfg := onlyRules(append([]string{c.rule}, c.extra...)...)
			got := render(runFixtureDirs(t, cfg, dirs...))
			if got == "" {
				t.Fatalf("fixture %s produced no findings; the rule is dead", dirs[0])
			}
			goldenPath := filepath.Join("testdata", "golden", name+".golden")
			if *update {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatal(err)
			}
			if got != string(want) {
				t.Errorf("findings diverge from %s:\n--- got ---\n%s--- want ---\n%s", goldenPath, got, want)
			}

			t.Run("disabled", func(t *testing.T) {
				off := onlyRules(c.extra...)
				for _, f := range runFixtureDirs(t, off, dirs...) {
					if f.Rule == c.rule {
						t.Errorf("disabled rule still reported: %s", f)
					}
				}
			})
		})
	}
}

// TestStaleAllows: with -staleallows, the wrong-line annotation in the
// allowcheck fixture (which suppresses nothing) is reported; without the
// flag it is not.
func TestStaleAllows(t *testing.T) {
	dir := filepath.Join("testdata", "src", "allowcheck")
	countStale := func(fs []finding) int {
		n := 0
		for _, f := range fs {
			if f.Rule == ruleAllowCheck && strings.Contains(f.Msg, "stale suppression") {
				n++
			}
		}
		return n
	}
	quiet := onlyRules(ruleAllowCheck, ruleTimeNow)
	if n := countStale(runFixture(t, quiet, dir)); n != 0 {
		t.Errorf("stale findings without -staleallows: %d", n)
	}
	loud := onlyRules(ruleAllowCheck, ruleTimeNow)
	loud.staleAllows = true
	stale := countStale(runFixture(t, loud, dir))
	if stale != 1 {
		t.Errorf("stale findings with -staleallows = %d, want 1 (the wrong-line allow)", stale)
	}
	// An allow for a disabled rule cannot prove itself stale: with timenow
	// off, every timenow allow suppresses nothing, yet none are reported.
	onlyAllow := onlyRules(ruleAllowCheck)
	onlyAllow.staleAllows = true
	if n := countStale(runFixture(t, onlyAllow, dir)); n != 0 {
		t.Errorf("allows for a disabled rule reported stale: %d", n)
	}
}

// TestSuppressionSemantics pins the individual suppression behaviors the
// allowcheck fixture encodes.
func TestSuppressionSemantics(t *testing.T) {
	dir := filepath.Join("testdata", "src", "allowcheck")
	fs := runFixture(t, onlyRules(ruleAllowCheck, ruleTimeNow), dir)
	var timenowLines []int
	msgs := make(map[string]bool)
	for _, f := range fs {
		if f.Rule == ruleTimeNow {
			timenowLines = append(timenowLines, f.Line)
		}
		msgs[f.Msg] = true
	}
	// unknownRule (line 11), missingReason (line 16) and wrongLine
	// (line 30) keep their timenow findings; legacy and prevLine are
	// suppressed.
	if want := []int{11, 16, 30}; fmt.Sprint(timenowLines) != fmt.Sprint(want) {
		t.Errorf("unsuppressed timenow findings at lines %v, want %v", timenowLines, want)
	}
	wantSubstrings := []string{
		`unknown rule "nosuchrule"`,
		"suppression carries no reason",
		"//detlint:allow is deprecated",
	}
	for _, sub := range wantSubstrings {
		found := false
		for m := range msgs {
			if strings.Contains(m, sub) {
				found = true
			}
		}
		if !found {
			t.Errorf("no allowcheck finding containing %q", sub)
		}
	}
}

// TestPanicExempt: the paniccontract fixture reports nothing when its
// package-path segment is exempted.
func TestPanicExempt(t *testing.T) {
	dir := filepath.Join("testdata", "src", "paniccontract")
	cfg := onlyRules(rulePanicContract)
	cfg.panicExempt = []string{"paniccontract"}
	if fs := runFixture(t, cfg, dir); len(fs) != 0 {
		t.Errorf("exempt package still reported: %v", fs)
	}
}

// TestBaselineRoundTrip: a written baseline swallows exactly the recorded
// findings and nothing more.
func TestBaselineRoundTrip(t *testing.T) {
	dir := filepath.Join("testdata", "src", "rangemap")
	fs := runFixture(t, onlyRules(ruleRangeMap), dir)
	if len(fs) == 0 {
		t.Fatal("fixture produced no findings")
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := writeBaselineFile(path, fs); err != nil {
		t.Fatal(err)
	}
	base, err := loadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if rest := base.filter(fs); len(rest) != 0 {
		t.Errorf("baseline left %d of its own findings: %v", len(rest), rest)
	}
	extra := append(append([]finding(nil), fs...), finding{File: "x.go", Line: 1, Col: 1, Rule: ruleTimeNow, Msg: "new"})
	if rest := base.filter(extra); len(rest) != 1 || rest[0].Msg != "new" {
		t.Errorf("baseline failed to isolate the new finding: %v", rest)
	}
}

// TestFindingJSON pins the machine-readable field names.
func TestFindingJSON(t *testing.T) {
	data, err := json.Marshal(finding{File: "f.go", Line: 3, Col: 7, Rule: ruleRand, Msg: "m"})
	if err != nil {
		t.Fatal(err)
	}
	want := `{"file":"f.go","line":3,"col":7,"rule":"rand","msg":"m"}`
	if string(data) != want {
		t.Errorf("finding JSON = %s, want %s", data, want)
	}
}

// TestVettoolProtocol builds the real binary and drives it through cmd/go
// as a vettool over the whole module, which must vet clean — the same
// acceptance gate make vet and CI enforce.
func TestVettoolProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the module twice")
	}
	root, err := filepath.Abs(filepath.Join("..", "..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Skipf("module root not found: %v", err)
	}
	bin := filepath.Join(t.TempDir(), "obdcheck")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Dir, _ = os.Getwd()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building vettool: %v\n%s", err, out)
	}
	vet := exec.Command("go", "vet", "-vettool="+bin, "./...")
	vet.Dir = root
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool over the module found issues: %v\n%s", err, out)
	}
}
