package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// The paniccontract rule: in packages that adopted the typed-error
// contract (CHANGES.md PR 3), a panic reachable from an exported function
// is a contract violation — misuse and overflow conditions must surface
// as matchable error values, not process-killing panics. Reachability is
// a static call graph seeded at the exported functions and methods, and
// since PR 7 it crosses package boundaries: each package exports "panic
// facts" (which of its exported functions can reach a panic, and through
// which chain), and a call from package Q into a may-panic function of
// package P counts as a panic site in Q. In vet mode the facts ride the
// vettool's vetx files, which cmd/go hands each unit for its imports; in
// standalone mode the driver runs a module-wide fixpoint.
//
// False-positive policy:
//   - Packages named by -paniccontract.exempt (path-segment match;
//     default spice,cells,logic — the analog layer until it migrates,
//     and logic's documented structural-query panic contract) are
//     skipped for reporting AND contribute no facts: their panics are
//     documented API contracts whose preconditions callers are trusted
//     to honor, the same one-sidedness DESIGN.md §9 records.
//   - A panic inside the default clause of an enum switch that covers
//     every declared constant is a machine-verified unreachability
//     assertion and exempt (see enumswitch).
//   - Deliberate contracts (Must* constructors, documented preconditions)
//     are annotated //obdcheck:allow paniccontract — <reason> at the
//     panic site. The allow silences the local finding but the panic
//     still propagates into the package's facts: a caller in another
//     typed-error package that reaches it from exported API must either
//     guard the precondition or carry its own reasoned allow at the call.
//   - Cross-package findings are deduplicated per (calling function,
//     callee): one finding per dependency edge, at the first call site.
//
// The rule requires type information for same-package method resolution;
// without it, it degrades to syntactic matching (plain calls and
// imported pkg.Fn selectors), which is what the fixture tree exercises.

// panicFact records that one exported function of a package can reach a
// panic, with a display chain for diagnostics.
type panicFact struct {
	Chain string `json:"chain"`
}

// pkgFacts is the per-package fact set exchanged between units (the JSON
// body of the vetx file in vet mode). Keys are "Func" for functions and
// "Recv.Method" for methods.
type pkgFacts struct {
	Panics map[string]panicFact `json:"panics,omitempty"`
}

func (f *pkgFacts) equal(o *pkgFacts) bool {
	if f == nil || o == nil {
		return f == o
	}
	if len(f.Panics) != len(o.Panics) {
		return false
	}
	for k, v := range f.Panics {
		if o.Panics[k] != v {
			return false
		}
	}
	return true
}

// panicSite is one direct panic(...) call outside exhaustive defaults.
type panicSite struct {
	pos        token.Pos
	suppressed bool
}

// xcall is one call into another package's function.
type xcall struct {
	pos        token.Pos
	path       string // callee package path (import path or fixture dir)
	key        string // fact key: "Func" or "Recv.Method"
	display    string // rendered callee, e.g. "logic.MustParse"
	suppressed bool
}

// panicNode is one function declaration in the package's panic graph.
type panicNode struct {
	decl    *ast.FuncDecl
	sites   []panicSite
	callees []*panicNode // same-package direct calls
	xcalls  []xcall

	mayPanic bool
	chain    string // representative chain, e.g. "MustNew → build → panic"
}

// panicGraph is the package's call graph restricted to what the rule
// needs: panic sites, same-package edges and cross-package edges.
type panicGraph struct {
	nodes []*panicNode // declaration order
}

// buildPanicGraph walks every function declaration once. It runs even for
// exempt packages and when the rule is disabled — fact computation must
// not depend on reporting configuration — but tolerates missing type
// information by degrading to syntactic resolution.
func (p *pass) buildPanicGraph() *panicGraph {
	g := &panicGraph{}
	byObj := make(map[types.Object]*panicNode)
	byName := make(map[string]*panicNode) // plain function name → node (syntactic fallback)
	for _, f := range p.files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			n := &panicNode{decl: fd}
			g.nodes = append(g.nodes, n)
			if p.info != nil {
				if obj := p.info.Defs[fd.Name]; obj != nil {
					byObj[obj] = n
				}
			}
			if fd.Recv == nil {
				byName[fd.Name.Name] = n
			}
		}
	}

	// Second walk: resolve calls now that every node exists.
	i := 0
	for _, f := range p.files {
		imports := importTable(f)
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			n := g.nodes[i]
			i++
			ast.Inspect(fd.Body, func(node ast.Node) bool {
				call, ok := node.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
					isBuiltin := true
					if p.info != nil {
						if obj, resolved := p.info.Uses[id]; resolved {
							_, isBuiltin = obj.(*types.Builtin)
						}
					}
					if isBuiltin && !p.inExhaustiveDefault(call.Pos()) {
						pos := p.fset.Position(call.Pos())
						n.sites = append(n.sites, panicSite{
							pos:        call.Pos(),
							suppressed: p.allows != nil && p.allows.suppress(pos, rulePanicContract),
						})
						return true
					}
				}
				p.resolveCall(call, imports, byObj, byName, n)
				return true
			})
		}
	}
	return g
}

// resolveCall classifies one call as a same-package edge, a cross-package
// edge, or neither, appending to the node.
func (p *pass) resolveCall(call *ast.CallExpr, imports map[string]string, byObj map[types.Object]*panicNode, byName map[string]*panicNode, n *panicNode) {
	var id *ast.Ident
	var sel *ast.SelectorExpr
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		sel = fun
		id = fun.Sel
	default:
		return
	}
	if p.info != nil {
		if fn, ok := p.info.Uses[id].(*types.Func); ok && fn.Pkg() != nil {
			if p.pkg != nil && fn.Pkg() == p.pkg {
				if target, ok := byObj[fn]; ok {
					n.callees = append(n.callees, target)
				}
				return
			}
			key := factKey(fn)
			n.xcalls = append(n.xcalls, p.newXcall(call, fn.Pkg().Path(), key, fn.Pkg().Name()+"."+key))
			return
		}
	}
	// Syntactic fallback (partial or missing type info).
	if sel == nil {
		if target, ok := byName[id.Name]; ok {
			n.callees = append(n.callees, target)
		}
		return
	}
	if base, ok := sel.X.(*ast.Ident); ok {
		if path, ok := imports[base.Name]; ok {
			n.xcalls = append(n.xcalls, p.newXcall(call, path, sel.Sel.Name, base.Name+"."+sel.Sel.Name))
		}
	}
}

func (p *pass) newXcall(call *ast.CallExpr, path, key, display string) xcall {
	pos := p.fset.Position(call.Pos())
	return xcall{
		pos: call.Pos(), path: path, key: key, display: display,
		suppressed: p.allows != nil && p.allows.suppress(pos, rulePanicContract),
	}
}

// factKey renders the fact-map key of a function object.
func factKey(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, isPtr := t.(*types.Pointer); isPtr {
			t = ptr.Elem()
		}
		if named, isNamed := t.(*types.Named); isNamed {
			return named.Obj().Name() + "." + fn.Name()
		}
	}
	return fn.Name()
}

// nodeKey renders the fact-map key of a declared function.
func nodeKey(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return types.ExprString(t) + "." + fd.Name.Name
}

// nodeExported reports whether the function is callable from another
// package: an exported function, or an exported method on an exported
// receiver type.
func nodeExported(fd *ast.FuncDecl) bool {
	if !fd.Name.IsExported() {
		return false
	}
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return true
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	id, ok := t.(*ast.Ident)
	return ok && id.IsExported()
}

// depFact looks up a callee fact in the imported fact sets. Standalone
// mode injects facts keyed by package directory, so the lookup also
// accepts suffix matches between the import path and the analyzed dirs.
func (p *pass) depFact(path, key string) (panicFact, bool) {
	if p.deps == nil {
		return panicFact{}, false
	}
	if facts, ok := p.deps[path]; ok && facts != nil {
		f, ok := facts.Panics[key]
		return f, ok
	}
	depPaths := make([]string, 0, len(p.deps))
	for depPath := range p.deps {
		depPaths = append(depPaths, depPath)
	}
	sort.Strings(depPaths)
	for _, depPath := range depPaths {
		facts := p.deps[depPath]
		if facts == nil || depPath == p.pkgPath {
			continue
		}
		if strings.HasSuffix(depPath, "/"+path) || strings.HasSuffix(path, "/"+depPath) {
			if f, ok := facts.Panics[key]; ok {
				return f, true
			}
		}
	}
	return panicFact{}, false
}

// propagate recomputes mayPanic and the representative chains over the
// package graph given the current imported facts. Deterministic: the
// worklist is seeded in declaration order and chains prefer the first
// source in that order.
func (g *panicGraph) propagate(p *pass) {
	for _, n := range g.nodes {
		n.mayPanic = false
		n.chain = ""
		name := nodeKey(n.decl)
		for _, s := range n.sites {
			if !s.suppressed {
				n.mayPanic = true
				n.chain = name + " → panic"
				break
			}
		}
		if !n.mayPanic {
			for _, s := range n.sites {
				if s.suppressed {
					n.mayPanic = true
					n.chain = name + " → panic (allowed contract)"
					break
				}
			}
		}
		if !n.mayPanic {
			for _, x := range n.xcalls {
				if fact, ok := p.depFact(x.path, x.key); ok {
					n.mayPanic = true
					n.chain = name + " → " + x.display + " (" + fact.Chain + ")"
					break
				}
			}
		}
	}
	// Fixpoint over same-package edges.
	for changed := true; changed; {
		changed = false
		for _, n := range g.nodes {
			if n.mayPanic {
				continue
			}
			for _, c := range n.callees {
				if c.mayPanic {
					n.mayPanic = true
					n.chain = nodeKey(n.decl) + " → " + c.chain
					changed = true
					break
				}
			}
		}
	}
}

// facts computes the package's exported panic facts from the prepared
// graph and the current imported facts. Exempt packages publish none.
func (p *pass) facts() *pkgFacts {
	out := &pkgFacts{}
	if p.graph == nil || p.panicExempt() {
		return out
	}
	p.graph.propagate(p)
	for _, n := range p.graph.nodes {
		if !n.mayPanic || !nodeExported(n.decl) {
			continue
		}
		if out.Panics == nil {
			out.Panics = make(map[string]panicFact)
		}
		out.Panics[nodeKey(n.decl)] = panicFact{Chain: n.chain}
	}
	return out
}

// checkPanicContract reports the rule's findings for a typed-error
// package: direct panics and calls into may-panic imports, wherever
// reachable from exported API.
func (p *pass) checkPanicContract() {
	if p.graph == nil || p.panicExempt() {
		return
	}
	p.graph.propagate(p)

	// BFS from the exported functions and methods; rootOf remembers one
	// exported entry point per reachable function for the message.
	rootOf := make(map[*panicNode]string)
	var queue []*panicNode
	for _, n := range p.graph.nodes {
		if n.decl.Name.IsExported() {
			rootOf[n] = exportedName(n.decl)
			queue = append(queue, n)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, callee := range n.callees {
			if _, seen := rootOf[callee]; seen {
				continue
			}
			rootOf[callee] = rootOf[n]
			queue = append(queue, callee)
		}
	}

	for _, n := range p.graph.nodes {
		root, reachable := rootOf[n]
		if !reachable {
			continue
		}
		for _, site := range n.sites {
			if site.suppressed {
				continue
			}
			p.reportRaw(site.pos, rulePanicContract,
				fmt.Sprintf("panic reachable from exported %s in a typed-error package; return a matchable error value instead", root))
		}
		seen := make(map[string]bool)
		for _, x := range n.xcalls {
			fact, ok := p.depFact(x.path, x.key)
			if !ok || x.suppressed {
				continue
			}
			edge := x.path + "." + x.key
			if seen[edge] {
				continue // one finding per (caller, callee) dependency edge
			}
			seen[edge] = true
			p.reportRaw(x.pos, rulePanicContract,
				fmt.Sprintf("call to %s can panic (%s) and is reachable from exported %s in a typed-error package; guard the precondition with a reasoned allow or return a typed error", x.display, fact.Chain, root))
		}
	}
}

// reportRaw appends a finding without re-consulting the allow set (the
// graph already resolved suppression when it classified the sites).
func (p *pass) reportRaw(pos token.Pos, rule, msg string) {
	position := p.fset.Position(pos)
	p.findings = append(p.findings, finding{
		File: position.Filename, Line: position.Line, Col: position.Column,
		Rule: rule, Msg: msg,
	})
}

// exportedName renders a function or method name for diagnostics.
func exportedName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	recv := types.ExprString(fd.Recv.List[0].Type)
	return "(" + recv + ")." + fd.Name.Name
}

// panicExempt reports whether the package path contains an exempt
// segment.
func (p *pass) panicExempt() bool {
	return pathHasSegment(p.pkgPath, p.cfg.panicExempt)
}

// factKeys returns the sorted fact keys, for deterministic debugging
// output.
func (f *pkgFacts) factKeys() []string {
	keys := make([]string, 0, len(f.Panics))
	for k := range f.Panics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
