package main

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// The paniccontract rule: in packages that adopted the typed-error
// contract (CHANGES.md PR 3), a panic statement reachable from an
// exported function is a contract violation — misuse and overflow
// conditions must surface as matchable error values, not process-killing
// panics. Reachability is a same-package static call graph seeded at the
// exported functions and methods, so a panic in an unexported helper
// called by exported API is caught (the internal/seq enumPatterns case),
// while a panic in purely internal plumbing nobody exported is not.
//
// False-positive policy:
//   - Packages named by -paniccontract.exempt (path-segment match;
//     default spice,cells,logic — the analog layer until it migrates,
//     and logic's documented structural-query panic contract) are
//     skipped entirely.
//   - A panic inside the default clause of an enum switch that covers
//     every declared constant is a machine-verified unreachability
//     assertion and exempt (see enumswitch).
//   - Deliberate contracts (Must* constructors, documented preconditions)
//     are annotated //obdcheck:allow paniccontract — <reason> at the
//     panic site.
//
// The rule requires type information and reports nothing without it.

// checkPanicContract runs the rule over the package.
func (p *pass) checkPanicContract() {
	if p.info == nil || p.panicExempt() {
		return
	}
	type fnInfo struct {
		decl    *ast.FuncDecl
		panics  []ast.Node     // panic call sites outside exhaustive defaults
		callees []types.Object // same-package functions invoked directly
	}
	var decls []*fnInfo // file/declaration order, for deterministic output
	byObj := make(map[types.Object]*fnInfo)
	for _, f := range p.files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj := p.info.Defs[fd.Name]
			if obj == nil {
				continue
			}
			fi := &fnInfo{decl: fd}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
					if _, isBuiltin := p.info.Uses[id].(*types.Builtin); isBuiltin || p.info.Uses[id] == nil {
						if !p.inExhaustiveDefault(call.Pos()) {
							fi.panics = append(fi.panics, call)
						}
						return true
					}
				}
				if callee := p.calleeObject(call); callee != nil {
					fi.callees = append(fi.callees, callee)
				}
				return true
			})
			decls = append(decls, fi)
			byObj[obj] = fi
		}
	}

	// BFS from the exported functions and methods; rootOf remembers one
	// exported entry point per reachable function for the message.
	rootOf := make(map[*fnInfo]string)
	var queue []*fnInfo
	for _, fi := range decls {
		if fi.decl.Name.IsExported() {
			rootOf[fi] = exportedName(fi.decl)
			queue = append(queue, fi)
		}
	}
	for len(queue) > 0 {
		fi := queue[0]
		queue = queue[1:]
		for _, callee := range fi.callees {
			target, ok := byObj[callee]
			if !ok {
				continue
			}
			if _, seen := rootOf[target]; seen {
				continue
			}
			rootOf[target] = rootOf[fi]
			queue = append(queue, target)
		}
	}

	for _, fi := range decls {
		root, reachable := rootOf[fi]
		if !reachable {
			continue
		}
		for _, site := range fi.panics {
			p.report(site.Pos(), rulePanicContract,
				fmt.Sprintf("panic reachable from exported %s in a typed-error package; return a matchable error value instead", root))
		}
	}
}

// calleeObject resolves a direct call to a same-package function or
// method object, or nil.
func (p *pass) calleeObject(call *ast.CallExpr) types.Object {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	obj, ok := p.info.Uses[id].(*types.Func)
	if !ok || obj.Pkg() == nil || obj.Pkg() != p.pkg {
		return nil
	}
	return obj
}

// exportedName renders a function or method name for diagnostics.
func exportedName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	recv := types.ExprString(fd.Recv.List[0].Type)
	return "(" + recv + ")." + fd.Name.Name
}

// panicExempt reports whether the package path contains an exempt
// segment.
func (p *pass) panicExempt() bool {
	segments := strings.Split(strings.Trim(p.pkgPath, "/"), "/")
	for _, seg := range segments {
		for _, ex := range p.cfg.panicExempt {
			if seg == ex {
				return true
			}
		}
	}
	return false
}
