package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// The obdcheck rule set. The first three are the determinism rules grown
// out of detlint; the rest enforce the repo's exhaustiveness, typed-error
// and scheduler contracts. Rule names double as the identifiers used in
// //obdcheck:allow annotations and per-rule enable flags.
const (
	ruleRangeMap      = "rangemap"
	ruleTimeNow       = "timenow"
	ruleRand          = "rand"
	ruleEnumSwitch    = "enumswitch"
	rulePanicContract = "paniccontract"
	ruleSchedMisuse   = "schedmisuse"
	ruleCtxFlow       = "ctxflow"
	ruleHotAlloc      = "hotalloc"
	ruleErrWrap       = "errwrap"
	ruleFacadeSync    = "facadesync"
	ruleAllowCheck    = "allowcheck"
)

// ruleInfo describes one registered rule for the -flags handshake, the
// enable flags and the documentation.
type ruleInfo struct {
	Name string
	Doc  string
}

// registry lists every rule in reporting-priority order. Adding a rule
// here is all that is needed for flag registration and allow validation.
var registry = []ruleInfo{
	{ruleRangeMap, "map iteration feeding an order-sensitive sink (append, channel send, fmt printing) without a canonicalizing sort"},
	{ruleTimeNow, "time.Now calls (wall-clock nondeterminism)"},
	{ruleRand, "math/rand package-level functions drawing from the shared global source; rand.New(rand.NewSource(seed)) is the allowed idiom"},
	{ruleEnumSwitch, "switches over declared enums must cover every constant or carry a non-panicking default"},
	{rulePanicContract, "panic reachable from an exported function in a package under the typed-error contract, including through cross-package call chains"},
	{ruleSchedMisuse, "scheduler ForEach/ForEachCtx closures writing captured state outside their own index slot"},
	{ruleCtxFlow, "context-carrying functions must thread their ctx into every context-capable callee; no context.Background/TODO in library code"},
	{ruleHotAlloc, "functions marked //obdcheck:hotpath may not allocate (make, new, fresh-slice append, map/slice literals, closures, boxing calls)"},
	{ruleErrWrap, "exported boundaries of typed-error packages must return wrapped (%w) or typed errors, never bare fmt.Errorf/errors.New"},
	{ruleFacadeSync, "every exported facade (gobd_*.go) symbol must delegate to an internal symbol; Deprecated aliases must name a live replacement"},
	{ruleAllowCheck, "malformed, unknown-rule, deprecated or (with -staleallows) stale suppression annotations"},
}

// knownRule reports whether name is a registered rule.
func knownRule(name string) bool {
	for _, r := range registry {
		if r.Name == name {
			return true
		}
	}
	return false
}

// config carries the driver options shared by the vettool and standalone
// modes.
type config struct {
	enabled       map[string]bool
	format        string // "text" or "json"
	baselinePath  string
	writeBaseline string
	staleAllows   bool
	panicExempt   []string // package-path segments exempt from paniccontract
	errwrapExempt []string // package-path segments exempt from errwrap
	factsModule   string   // import-path prefix whose packages get panic facts computed
}

func defaultConfig() *config {
	c := &config{
		enabled: make(map[string]bool, len(registry)),
		format:  "text",
		panicExempt: []string{
			// The analog layer keeps its construction panics until it
			// migrates to typed errors; logic predates the contract and
			// documents its structural-query panics (mustValidate); exper
			// is the figure-generation harness — experiment scripts whose
			// deliberate Must* usage is not library API.
			"spice", "cells", "logic", "exper",
		},
		errwrapExempt: []string{
			// The analog layer predates the typed-error contract entirely;
			// logic's parse layer adopted *ParseError (PR 7) but its
			// structural-query layer is still stringly-typed, so the
			// exemption stays until that migrates too (mirroring
			// panicExempt).
			"spice", "cells", "logic",
		},
		// Panic facts are only worth computing for module packages: the
		// cross-package chains the contract cares about are module-internal,
		// and parsing the stdlib on every facts pass would be pure waste.
		factsModule: "gobd",
	}
	for _, r := range registry {
		c.enabled[r.Name] = true
	}
	return c
}

// finding is one diagnostic.
type finding struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Rule string `json:"rule"`
	Msg  string `json:"msg"`
}

func (f finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", f.File, f.Line, f.Col, f.Msg, f.Rule)
}

// key is the baseline identity of a finding: positions shift with every
// edit, so the key is rule + file basename + message.
func (f finding) key() string {
	return f.Rule + "|" + filepath.Base(f.File) + "|" + f.Msg
}

// span is a half-open position range.
type span struct{ pos, end token.Pos }

func (s span) contains(p token.Pos) bool { return p >= s.pos && p < s.end }

// pass analyzes one package (all its non-test files together, so
// cross-file constant declarations and call graphs resolve).
type pass struct {
	cfg     *config
	fset    *token.FileSet
	files   []*ast.File
	info    *types.Info    // may be nil (syntax-only) or partially filled
	pkg     *types.Package // may be nil
	pkgPath string

	findings []finding
	allows   *allowSet
	// exhaustiveDefaults are default-clause bodies of enum switches whose
	// cases cover every declared constant: a panic there is a machine-
	// verified unreachability assertion, not a contract violation.
	exhaustiveDefaults []span

	// deps maps an imported package path to the panic facts its own pass
	// produced (vet mode: read from the vetx files; standalone mode:
	// injected by the cross-package fixpoint). Missing entries degrade to
	// "no known panics" — the rule stays one-sided.
	deps map[string]*pkgFacts
	// graph is the package's panic call graph, built once by prepare so
	// fact computation (which the driver may repeat during the standalone
	// fixpoint) does not re-walk the syntax trees.
	graph *panicGraph
}

func newPass(cfg *config, fset *token.FileSet, files []*ast.File, info *types.Info, pkg *types.Package, pkgPath string) *pass {
	return &pass{cfg: cfg, fset: fset, files: files, info: info, pkg: pkg, pkgPath: pkgPath}
}

// prepare runs the analyses shared by fact computation and reporting:
// suppression parsing, exhaustive-default discovery and the panic call
// graph. It must be called exactly once, before facts() or run().
func (p *pass) prepare() {
	p.allows = collectAllows(p)
	p.exhaustiveDefaults = findExhaustiveDefaults(p)
	p.graph = p.buildPanicGraph()
}

// run executes every enabled rule over the package and returns the
// findings sorted by position. prepare must have run first.
func (p *pass) run() []finding {
	for _, f := range p.files {
		if p.cfg.enabled[ruleRangeMap] || p.cfg.enabled[ruleTimeNow] || p.cfg.enabled[ruleRand] {
			p.checkDeterminism(f)
		}
		if p.cfg.enabled[ruleEnumSwitch] {
			p.checkEnumSwitch(f)
		}
		if p.cfg.enabled[ruleSchedMisuse] {
			p.checkSchedMisuse(f)
		}
		if p.cfg.enabled[ruleCtxFlow] {
			p.checkCtxFlow(f)
		}
		if p.cfg.enabled[ruleErrWrap] {
			p.checkErrWrap(f)
		}
	}
	if p.cfg.enabled[ruleHotAlloc] {
		p.checkHotAlloc()
	}
	if p.cfg.enabled[ruleFacadeSync] {
		p.checkFacadeSync()
	}
	if p.cfg.enabled[rulePanicContract] {
		p.checkPanicContract()
	}
	if p.cfg.enabled[ruleAllowCheck] {
		p.reportAllowFindings()
	}
	sort.Slice(p.findings, func(i, j int) bool {
		a, b := p.findings[i], p.findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Msg < b.Msg
	})
	// Drop exact duplicates: a rule may fire more than once at the same
	// position (e.g. two appends inside one map-range body).
	dedup := p.findings[:0]
	for i, f := range p.findings {
		if i > 0 && f == p.findings[i-1] {
			continue
		}
		dedup = append(dedup, f)
	}
	p.findings = dedup
	return p.findings
}

// report records a finding unless an allow annotation suppresses it.
func (p *pass) report(pos token.Pos, rule, msg string) {
	position := p.fset.Position(pos)
	if p.allows != nil && p.allows.suppress(position, rule) {
		return
	}
	p.findings = append(p.findings, finding{
		File: position.Filename, Line: position.Line, Col: position.Column,
		Rule: rule, Msg: msg,
	})
}

// inExhaustiveDefault reports whether pos falls inside the default clause
// of a switch proven to cover its whole enum.
func (p *pass) inExhaustiveDefault(pos token.Pos) bool {
	for _, s := range p.exhaustiveDefaults {
		if s.contains(pos) {
			return true
		}
	}
	return false
}

// baseline maps finding keys to the number of occurrences tolerated. A
// run consumes matching findings up to the count; anything beyond fails.
type baseline struct {
	Findings map[string]int `json:"findings"`
}

func loadBaseline(path string) (*baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("obdcheck: reading baseline: %w", err)
	}
	var b baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("obdcheck: parsing baseline %s: %w", path, err)
	}
	if b.Findings == nil {
		b.Findings = make(map[string]int)
	}
	return &b, nil
}

// filter drops findings covered by the baseline and returns the rest.
func (b *baseline) filter(fs []finding) []finding {
	remaining := make(map[string]int, len(b.Findings))
	for k, v := range b.Findings {
		remaining[k] = v
	}
	var out []finding
	for _, f := range fs {
		if remaining[f.key()] > 0 {
			remaining[f.key()]--
			continue
		}
		out = append(out, f)
	}
	return out
}

// writeBaselineFile records the findings as the new tolerated baseline.
func writeBaselineFile(path string, fs []finding) error {
	b := baseline{Findings: make(map[string]int)}
	for _, f := range fs {
		b.Findings[f.key()]++
	}
	data, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// emit prints findings in the configured format. Text goes to stderr
// (the vet convention); JSON to stdout.
func emit(cfg *config, fs []finding) {
	if cfg.format == "json" {
		data, err := json.MarshalIndent(fs, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "obdcheck: %v\n", err)
			return
		}
		fmt.Fprintf(os.Stdout, "%s\n", data)
		return
	}
	for _, f := range fs {
		fmt.Fprintln(os.Stderr, f)
	}
}

// fileImports reports whether the file imports the given path.
func fileImports(f *ast.File, path string) bool {
	for _, imp := range f.Imports {
		if strings.Trim(imp.Path.Value, `"`) == path {
			return true
		}
	}
	return false
}

// pathHasSegment reports whether any "/"-separated segment of path equals
// one of the given segments — the matching used by the per-rule package
// exemption lists.
func pathHasSegment(path string, segments []string) bool {
	for _, seg := range strings.Split(strings.Trim(path, "/"), "/") {
		for _, ex := range segments {
			if seg == ex {
				return true
			}
		}
	}
	return false
}

// importTable maps each file's local import names to import paths, so
// syntax-only analysis can resolve pkg.Sym selectors. The default local
// name is the last path segment (close enough for this module's layout;
// typed analysis does not use the table).
func importTable(f *ast.File) map[string]string {
	t := make(map[string]string, len(f.Imports))
	for _, imp := range f.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		name := path
		if i := strings.LastIndexByte(path, '/'); i >= 0 {
			name = path[i+1:]
		}
		if imp.Name != nil {
			if imp.Name.Name == "_" || imp.Name.Name == "." {
				continue
			}
			name = imp.Name.Name
		}
		t[name] = path
	}
	return t
}
