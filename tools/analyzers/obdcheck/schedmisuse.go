package main

import (
	"fmt"
	"go/ast"
	"go/types"
)

// The schedmisuse rule: closures handed to the atpg scheduler's
// ForEach/ForEachCtx must only commit to their own index slot. The
// scheduler's determinism contract ("bit-identical for any worker
// count") holds exactly because fn(i) writes per-index state; a closure
// that appends to a captured slice, bumps a captured counter, writes a
// captured map at a fixed key, or sends on a channel re-introduces the
// scheduling-order dependence the contract forbids — the race the
// property tests only catch probabilistically, caught statically here.
//
// Detection: for each call <recv>.ForEach(...)/<recv>.ForEachCtx(...)
// whose receiver's named type is Scheduler (type-checked; the rule is
// silent without type information) and whose last argument is a func
// literal, every assignment target inside the literal must be local to
// the literal or an index expression whose index is derived from a
// local (the loop index or anything computed from it). Channel sends on
// captured channels are always flagged.
//
// False-positive policy: writes through method calls on captured values
// (x.Add(i)) are not modeled — the rule is a linter, not an escape
// analysis; the race detector and property tests remain the backstop.
// Result-neutral accumulation (e.g. stats counters merged under a lock)
// is annotated //obdcheck:allow schedmisuse — <reason>.

// schedMethods are the Scheduler entry points taking a per-index closure.
var schedMethods = map[string]bool{"ForEach": true, "ForEachCtx": true}

// checkSchedMisuse runs the rule over one file.
func (p *pass) checkSchedMisuse(f *ast.File) {
	if p.info == nil {
		return
	}
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !schedMethods[sel.Sel.Name] || len(call.Args) == 0 {
			return true
		}
		if !p.isSchedulerRecv(sel.X) {
			return true
		}
		lit, ok := call.Args[len(call.Args)-1].(*ast.FuncLit)
		if !ok {
			return true
		}
		p.checkSchedClosure(sel.Sel.Name, lit)
		return true
	})
}

// isSchedulerRecv reports whether the expression's named type (through
// pointers) is called Scheduler.
func (p *pass) isSchedulerRecv(e ast.Expr) bool {
	t := p.info.TypeOf(e)
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Scheduler"
}

// checkSchedClosure verifies the slot-commit discipline of one closure.
func (p *pass) checkSchedClosure(method string, lit *ast.FuncLit) {
	locals := closureLocals(lit)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.FuncLit:
			return false // a nested closure's writes are out of scope (documented)
		case *ast.AssignStmt:
			if s.Tok.String() == ":=" {
				return true // definitions create locals, collected by closureLocals
			}
			for _, lhs := range s.Lhs {
				p.checkSchedTarget(method, lhs, locals)
			}
		case *ast.IncDecStmt:
			p.checkSchedTarget(method, s.X, locals)
		case *ast.SendStmt:
			if root := rootIdent(s.Chan); root != nil && !locals[root.Name] {
				p.report(s.Chan.Pos(), ruleSchedMisuse,
					fmt.Sprintf("%s closure sends on captured channel %s; send order is scheduling-dependent, breaking the determinism contract",
						method, types.ExprString(s.Chan)))
			}
		}
		return true
	})
}

// checkSchedTarget validates one assignment target: fine when it bottoms
// out in a closure-local variable or passes through an index derived
// from a closure-local (the slot commit); otherwise flagged.
func (p *pass) checkSchedTarget(method string, lhs ast.Expr, locals map[string]bool) {
	indexed := false // saw an index expression mentioning a local
	e := lhs
walk:
	for {
		switch t := e.(type) {
		case *ast.Ident:
			if t.Name == "_" || locals[t.Name] {
				return
			}
			break walk
		case *ast.IndexExpr:
			if mentionsLocal(t.Index, locals) {
				indexed = true
			}
			e = t.X
		case *ast.SelectorExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		case *ast.ParenExpr:
			e = t.X
		default:
			return // unrecognized shape: stay quiet rather than guess
		}
	}
	if indexed {
		return
	}
	p.report(lhs.Pos(), ruleSchedMisuse,
		fmt.Sprintf("%s closure writes captured %s outside its own index slot; the determinism contract requires per-index commits (or an //obdcheck:allow %s — reason)",
			method, types.ExprString(lhs), ruleSchedMisuse))
}

// closureLocals collects the names defined inside the literal: its
// parameters and every := / var / range definition (including those of
// nested literals — a conservative over-approximation that avoids false
// positives).
func closureLocals(lit *ast.FuncLit) map[string]bool {
	locals := make(map[string]bool)
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, n := range f.Names {
				locals[n.Name] = true
			}
		}
	}
	addFields(lit.Type.Params)
	addFields(lit.Type.Results)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if s.Tok.String() == ":=" {
				for _, lhs := range s.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						locals[id.Name] = true
					}
				}
			}
		case *ast.GenDecl:
			for _, spec := range s.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, name := range vs.Names {
						locals[name.Name] = true
					}
				}
			}
		case *ast.RangeStmt:
			for _, e := range []ast.Expr{s.Key, s.Value} {
				if id, ok := e.(*ast.Ident); ok {
					locals[id.Name] = true
				}
			}
		case *ast.FuncLit:
			addFields(s.Type.Params)
			addFields(s.Type.Results)
		}
		return true
	})
	return locals
}

// mentionsLocal reports whether the expression references any
// closure-local identifier.
func mentionsLocal(e ast.Expr, locals map[string]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && locals[id.Name] {
			found = true
		}
		return !found
	})
	return found
}

// rootIdent walks selector/index/paren/star chains to the base
// identifier, or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch t := e.(type) {
		case *ast.Ident:
			return t
		case *ast.IndexExpr:
			e = t.X
		case *ast.SelectorExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		case *ast.ParenExpr:
			e = t.X
		default:
			return nil
		}
	}
}
