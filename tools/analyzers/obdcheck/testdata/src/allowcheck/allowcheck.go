// Package allowcheck is an obdcheck fixture: the suppressions themselves
// are checked — unknown rules, missing reasons, deprecated forms and
// misplaced allows are findings, never silently honored.
package allowcheck

import "time"

// unknownRule names a rule that does not exist: the allow is inert and
// reported, and the timenow finding still surfaces.
func unknownRule() time.Time {
	return time.Now() //obdcheck:allow nosuchrule — typo fixture
}

// missingReason omits the mandatory reason: inert and reported.
func missingReason() time.Time {
	return time.Now() //obdcheck:allow timenow
}

// legacy uses the deprecated detlint form: it still suppresses, but the
// deprecation is reported.
func legacy() time.Time {
	return time.Now() //detlint:allow timenow — migrated branches keep vetting
}

// wrongLine puts the allow two lines above the finding, where it
// suppresses nothing.
func wrongLine() time.Time {
	//obdcheck:allow timenow — too far from the call

	return time.Now()
}

// prevLine is the correct preceding-line form and passes.
func prevLine() time.Time {
	//obdcheck:allow timenow — fixture: annotated read passes
	return time.Now()
}
