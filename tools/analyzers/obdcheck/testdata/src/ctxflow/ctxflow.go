// Package ctxflow is the fixture for the ctxflow rule: ctx threading,
// root-context minting and the Foo/FooCtx wrapper idiom.
package ctxflow

import "context"

// FetchCtx is the cancellation-aware implementation: clean.
func FetchCtx(ctx context.Context, n int) int {
	if ctx.Err() != nil {
		return 0
	}
	return n * 2
}

// Fetch is the compatibility wrapper: minting Background inside the
// function whose FetchCtx sibling exists is the blessed idiom.
func Fetch(n int) int {
	return FetchCtx(context.Background(), n)
}

// Detach mints a root context in library code with no Ctx sibling.
func Detach() context.Context {
	return context.Background() // want arm 4
}

// Reroot holds a ctx but mints a fresh one anyway.
func Reroot(ctx context.Context) context.Context {
	if ctx.Err() != nil {
		return ctx
	}
	return context.TODO() // want arm 1
}

// Sum holds a ctx but calls the non-Ctx variant of Fetch.
func Sum(ctx context.Context, ns []int) int {
	if ctx.Err() != nil {
		return 0
	}
	total := 0
	for _, n := range ns {
		total += Fetch(n) // want arm 2
	}
	return total
}

// Ignore declares a ctx it never consults.
func Ignore(ctx context.Context, n int) int { // want arm 3
	return n + 1
}

// Thread does everything right: clean.
func Thread(ctx context.Context, ns []int) int {
	total := 0
	for _, n := range ns {
		total += FetchCtx(ctx, n)
	}
	return total
}

// ServerLifetime deliberately detaches from any caller: suppressed.
func ServerLifetime() context.Context {
	return context.Background() //obdcheck:allow ctxflow — server-lifetime context by design
}
