// Package enumswitch is an obdcheck fixture: exhaustiveness over
// declared enums.
package enumswitch

// Color is a three-valued enum; Crimson aliases Red.
type Color int

const (
	Red Color = iota
	Green
	Blue
)

const Crimson = Red

// bad misses Blue and has no default.
func bad(c Color) string {
	switch c {
	case Red:
		return "red"
	case Green:
		return "green"
	}
	return "?"
}

// badPanic misses Blue behind a panic-only default — the failure mode
// that hides newly added constants until they crash.
func badPanic(c Color) string {
	switch c {
	case Red:
		return "red"
	case Green:
		return "green"
	default:
		panic("unknown color")
	}
}

// goodAll covers every constant.
func goodAll(c Color) string {
	switch c {
	case Red:
		return "red"
	case Green:
		return "green"
	case Blue:
		return "blue"
	}
	return "?"
}

// goodDefault handles future values with a genuine default.
func goodDefault(c Color) string {
	switch c {
	case Red:
		return "red"
	default:
		return "other"
	}
}

// goodExhaustivePanic covers everything; its panic default is a verified
// unreachability assertion, not a hole.
func goodExhaustivePanic(c Color) string {
	switch c {
	case Red, Green, Blue:
		return "colorful"
	default:
		panic("unreachable")
	}
}

// goodAlias covers Red through its alias Crimson (matching is by value).
func goodAlias(c Color) string {
	switch c {
	case Crimson, Green, Blue:
		return "ok"
	}
	return "?"
}

// goodNonEnum switches over a plain int, which is not an enum.
func goodNonEnum(n int) string {
	switch n {
	case 0:
		return "zero"
	}
	return "?"
}
