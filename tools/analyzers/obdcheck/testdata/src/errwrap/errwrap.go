// Package errwrap is the fixture for the errwrap rule: matchable errors
// at exported boundaries of typed-error packages.
package errwrap

import (
	"errors"
	"fmt"
)

// ErrMissing is a package sentinel: errors.New at package level is the
// approved idiom, not a finding.
var ErrMissing = errors.New("errwrap: missing")

// Lookup trips each positive arm.
func Lookup(key string) error {
	if key == "" {
		return errors.New("empty key") // want leaf errors.New
	}
	if key == "legacy" {
		return fmt.Errorf("legacy key %q rejected", key) // want bare Errorf
	}
	if err := probe(key); err != nil {
		return fmt.Errorf("probing %q: %v", key, err) // want %v on error operand
	}
	return nil
}

// Wrap stays clean: %w wrapping and a sentinel return.
func Wrap(key string) error {
	if err := probe(key); err != nil {
		return fmt.Errorf("probing %q: %w", key, err)
	}
	return ErrMissing
}

// Allowed returns a deliberately opaque error under a reasoned allow.
func Allowed() error {
	return errors.New("deliberate opaque error") //obdcheck:allow errwrap — intentionally unmatchable, probed by Lookup tests
}

// probe is unexported: bare errors here are out of the rule's lexical
// scope (one-sided by design).
func probe(key string) error {
	if key == "bad" {
		return errors.New("probe failed")
	}
	return nil
}
