// Package facadesync is the fixture for the facadesync rule: gobd-style
// facade files must delegate to internal packages and keep their
// Deprecated pointers live. The internal import deliberately does not
// resolve — the rule is syntactic, like real standalone runs over the
// module root.
package facadesync

import (
	"strings"

	"facadesync/internal/impl"
)

// Circuit is the canonical alias shape: delegates, clean.
type Circuit = impl.Circuit

// Grade re-exports the internal entry point: clean.
var Grade = impl.Grade

// MaxInputs re-exports the internal limit: clean.
const MaxInputs = impl.MaxInputs

// Local is declared in the facade instead of aliased.
type Local struct { // want facade-declared type
	Name string
}

// Normalize carries real logic without touching an internal package.
func Normalize(s string) string { // want non-delegating func
	return strings.ToUpper(strings.TrimSpace(s))
}

// Doc is deliberately self-contained, under a reasoned allow.
func Doc() string { //obdcheck:allow facadesync — documentation helper, no internal counterpart
	return "facade fixture"
}

// NewGrade is the replacement the live Deprecated alias points at.
var NewGrade = impl.Grade

// Old still delegates, but its migration hint names a symbol that does
// not exist in this package.
//
// Deprecated: use GradeAll instead.
var Old = impl.Grade // want stale Deprecated pointer

// Older delegates and names a live replacement: clean.
//
// Deprecated: use NewGrade instead.
var Older = impl.Grade
