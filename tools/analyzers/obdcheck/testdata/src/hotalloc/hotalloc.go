// Package hotalloc is the fixture for the hotalloc rule: allocation
// classes inside //obdcheck:hotpath-marked functions and literals.
package hotalloc

import "fmt"

// Scratch is pooled storage the hot path reuses between calls.
type Scratch struct {
	vals []int
}

// grow is the slow path: unmarked, so its make is legal.
func (s *Scratch) grow(n int) {
	if cap(s.vals) < n {
		s.vals = make([]int, 0, n)
	}
}

// Accumulate is marked and allocates in every way the rule knows.
//
//obdcheck:hotpath
func Accumulate(xs []int) []int {
	var out []int
	counts := map[int]int{} // want map literal
	for _, x := range xs {
		out = append(out, x) // want fresh-slice append
		counts[x]++
	}
	extra := make([]int, 4) // want make
	_ = extra
	box := new(int) // want new
	_ = box
	bump := func() { *box = *box + 1 } // want closure
	bump()
	go bump() // want goroutine
	return out
}

// Describe boxes its argument into fmt's ...interface{}.
//
//obdcheck:hotpath
func Describe(n int) string {
	return fmt.Sprintf("n=%d", n) // want boxing
}

// Fill reuses the pooled storage: reslice plus field-rooted appends are
// the amortized-growth idiom and stay clean.
//
//obdcheck:hotpath
func (s *Scratch) Fill(xs []int) {
	s.vals = s.vals[:0]
	for _, x := range xs {
		s.vals = append(s.vals, x)
	}
}

type point struct{ x, y int }

// Mid builds a value struct literal: stack-allocated, clean.
//
//obdcheck:hotpath
func Mid(a, b point) point {
	return point{(a.x + b.x) / 2, (a.y + b.y) / 2}
}

// Seed allocates once at warmup under a reasoned allow.
//
//obdcheck:hotpath
func Seed() []int {
	return make([]int, 8) //obdcheck:allow hotalloc — one-time warmup, measured cold
}

// Collect returns a marked literal that allocates per call.
func Collect() func(int) []int {
	//obdcheck:hotpath
	return func(x int) []int {
		return []int{x} // want slice literal
	}
}

// Counter returns a marked literal that is clean.
func Counter() func() int {
	n := 0
	//obdcheck:hotpath
	inc := func() int {
		n++
		return n
	}
	return inc
}
