// Package paniccontract is an obdcheck fixture: panics reachable from
// exported API in a typed-error package.
package paniccontract

// Direct panics straight from exported API.
func Direct(n int) int {
	if n < 0 {
		panic("negative")
	}
	return n
}

// Indirect reaches a panic through an unexported helper.
func Indirect(n int) int { return helper(n) }

func helper(n int) int {
	if n > 10 {
		panic("too big")
	}
	return n
}

// isolated is unreachable from any exported function and not flagged.
func isolated() { panic("internal only") }

// MustPositive carries a reasoned suppression for its Must contract.
func MustPositive(n int) int {
	if n <= 0 {
		//obdcheck:allow paniccontract — fixture: documented Must-constructor contract
		panic("not positive")
	}
	return n
}

// stage is a two-valued enum whose exhaustive switch makes the panic
// default a machine-verified unreachability assertion (auto-exempt).
type stage int

const (
	s0 stage = iota
	s1
)

// Name is exported yet clean: its only panic sits in an exhaustive
// enum switch's default.
func Name(s stage) string {
	switch s {
	case s0:
		return "s0"
	case s1:
		return "s1"
	default:
		panic("unreachable")
	}
}
