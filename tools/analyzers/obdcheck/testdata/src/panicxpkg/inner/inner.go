// Package inner is the callee side of the cross-package paniccontract
// fixture: its allowed Must* panic is silent locally but still exports a
// panic fact that callers must answer for.
package inner

// MustPick panics on empty input — a documented contract, locally
// allowed, but the fact propagates.
func MustPick(xs []int) int {
	if len(xs) == 0 {
		panic("inner: empty input") //obdcheck:allow paniccontract — documented Must* contract
	}
	return xs[0]
}

// Total is panic-free: no fact, no findings at its callers.
func Total(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}
