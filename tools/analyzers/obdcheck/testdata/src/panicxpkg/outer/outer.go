// Package outer is the caller side of the cross-package paniccontract
// fixture: calls into inner's may-panic contract are findings wherever
// they are reachable from outer's exported API.
package outer

import "panicxpkg/inner"

// First hands the contract straight to its caller.
func First(xs []int) int {
	return inner.MustPick(xs) // want cross-package finding
}

// Guarded checks the precondition and says so: suppressed.
func Guarded(xs []int) int {
	if len(xs) == 0 {
		return 0
	}
	return inner.MustPick(xs) //obdcheck:allow paniccontract — precondition guarded above
}

// Sum calls only the panic-free callee: clean.
func Sum(xs []int) int {
	return inner.Total(xs)
}

// Report reaches the contract through an unexported helper: the chain
// Report → pick → inner.MustPick is still a finding.
func Report(xs []int) int {
	return pick(xs) * 2
}

func pick(xs []int) int {
	return inner.MustPick(xs) // want cross-package finding via Report
}
