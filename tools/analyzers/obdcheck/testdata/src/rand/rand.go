// Package rand is an obdcheck fixture: global vs seeded math/rand.
package rand

import "math/rand"

// bad draws from the shared global source.
func bad() int { return rand.Intn(6) }

// badShuffle shuffles with the global source.
func badShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

// good is the replayable idiom: a private seeded source.
func good(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(6)
}
