// Package rangemap is an obdcheck fixture: map iteration feeding
// order-sensitive sinks.
package rangemap

import (
	"fmt"
	"sort"
)

// bad appends in map order without a canonicalizing sort.
func bad(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// badTwice appends twice to the same slice in one body; the driver
// dedups the identical reports into one finding.
func badTwice(m map[string]int) []string {
	var a []string
	for k := range m {
		a = append(a, k)
		a = append(a, k+"!")
	}
	return a
}

// badPrint prints in map order.
func badPrint(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}

// badSend sends in map order.
func badSend(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k
	}
}

// goodSorted appends but re-canonicalizes with a sort afterwards.
func goodSorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// goodCount only accumulates an order-insensitive count.
func goodCount(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// goodSlice ranges a slice, not a map.
func goodSlice(xs []string) []string {
	var out []string
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}
