// Package schedmisuse is an obdcheck fixture: ForEach/ForEachCtx closure
// discipline. The local Scheduler type mimics the atpg scheduler's shape;
// the rule matches by receiver type name.
package schedmisuse

type Scheduler struct{}

func (s *Scheduler) ForEach(n int, fn func(i int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}

func (s *Scheduler) ForEachCtx(n int, fn func(i int) error) error {
	for i := 0; i < n; i++ {
		if err := fn(i); err != nil {
			return err
		}
	}
	return nil
}

// BadCounter bumps a captured accumulator.
func BadCounter(s *Scheduler, n int) int {
	total := 0
	s.ForEach(n, func(i int) {
		total += i
	})
	return total
}

// BadAppend appends to a captured slice in completion order.
func BadAppend(s *Scheduler, n int) []int {
	var out []int
	s.ForEach(n, func(i int) {
		out = append(out, i)
	})
	return out
}

// BadSend sends on a captured channel.
func BadSend(s *Scheduler, ch chan int, n int) {
	s.ForEach(n, func(i int) {
		ch <- i
	})
}

// GoodSlot commits to its own index slot.
func GoodSlot(s *Scheduler, n int) []int {
	out := make([]int, n)
	s.ForEach(n, func(i int) {
		out[i] = i * i
	})
	return out
}

// GoodCtx commits through a local into its slot and returns an error.
func GoodCtx(s *Scheduler, n int) ([]float64, error) {
	res := make([]float64, n)
	err := s.ForEachCtx(n, func(i int) error {
		v := float64(i)
		res[i] = 2 * v
		return nil
	})
	return res, err
}

// GoodOtherType is not a Scheduler; the rule does not apply.
type pool struct{}

func (p *pool) ForEach(n int, fn func(i int)) {}

func GoodOtherType(p *pool, n int) int {
	total := 0
	p.ForEach(n, func(i int) {
		total += i
	})
	return total
}
