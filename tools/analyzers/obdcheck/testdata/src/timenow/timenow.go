// Package timenow is an obdcheck fixture: wall-clock reads.
package timenow

import "time"

// bad reads the wall clock.
func bad() int64 { return time.Now().UnixNano() }

// good uses time only for arithmetic.
func good() time.Duration { return 42 * time.Millisecond }

// allowed carries a reasoned suppression and passes.
func allowed() time.Time {
	return time.Now() //obdcheck:allow timenow — fixture: annotated reads pass
}
