// Command benchbig records the big-circuit grading perf trajectory: it
// loads the committed c432-scale .bench circuit, builds the full OBD
// universe and a seeded complete two-pattern set, then times a full
// test-set grade through the full-sweep reference grader and through the
// levelized event-driven engine (with and without fault collapsing) at
// one worker, so the numbers measure work and allocation reduction, not
// parallelism. The result is written as JSON (BENCH_big.json at the repo
// root via `make bench-big`), one snapshot per optimization PR.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"

	"gobd/internal/atpg"
	"gobd/internal/fault"
	"gobd/internal/logic"
	"gobd/internal/seq"
)

type result struct {
	NsPerGrade    int64   `json:"ns_per_grade"`
	AllocsPerOp   int64   `json:"allocs_per_op"`
	BytesPerOp    int64   `json:"bytes_per_op"`
	PairSims      int64   `json:"pair_sims,omitempty"`
	SpeedupVsSwep float64 `json:"speedup_vs_sweep,omitempty"`
}

type report struct {
	Circuit    string `json:"circuit"`
	Inputs     int    `json:"inputs"`
	Gates      int    `json:"gates"`
	Faults     int    `json:"faults"`
	Pairs      int    `json:"pairs"`
	Workers    int    `json:"workers"`
	GoMaxProcs int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`

	Sweep          result `json:"sweep"`
	Event          result `json:"event"`
	EventCollapsed result `json:"event_collapsed"`

	Sequential *seqReport `json:"sequential,omitempty"`
}

// seqReport is the sequential snapshot: the committed s27-class circuit
// lifted into the scan model, time-frame ATPG per scan style (each an
// exhaustive search over its launch space, so the timing tracks the
// pair-enumeration and grading cost), and a two-frame unrolled grade
// through the event engine.
type seqReport struct {
	Circuit  string `json:"circuit"`
	FFs      int    `json:"ffs"`
	CoreGate int    `json:"core_gates"`
	Faults   int    `json:"faults"`

	Enhanced styleResult `json:"enhanced"`
	LOS      styleResult `json:"los"`
	LOC      styleResult `json:"loc"`

	UnrolledGates int    `json:"unrolled_gates"`
	UnrolledGrade result `json:"unrolled_grade"`
}

type styleResult struct {
	Coverage  string `json:"coverage"`
	Exact     bool   `json:"exact"`
	NsPerATPG int64  `json:"ns_per_atpg"`
}

func main() {
	netlist := flag.String("netlist", "testdata/c432.bench", "circuit to grade")
	out := flag.String("out", "", "write the JSON report here (default stdout)")
	seqNetlist := flag.String("seq-netlist", "testdata/s27.bench", "sequential circuit for the scan-style snapshot (empty disables)")
	pairs := flag.Int("pairs", 256, "number of complete two-pattern tests")
	seed := flag.Int64("seed", 1, "test-set RNG seed")
	flag.Parse()

	c, err := logic.ParseFile(*netlist)
	if err != nil {
		fatal(err)
	}
	faults, _ := fault.OBDUniverse(c)
	tests := completeTests(rand.New(rand.NewSource(*seed)), c, *pairs)

	rep := report{
		Circuit:    *netlist,
		Inputs:     len(c.Inputs),
		Gates:      len(c.Gates),
		Faults:     len(faults),
		Pairs:      len(tests),
		Workers:    1,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
	}

	// The sweep baseline is what grading did before the event engine: one
	// shared set of good-machine block evaluations, then a whole-circuit
	// faulty re-evaluation per fault per block.
	rep.Sweep = measure(func() {
		sg := atpg.NewSweepGrader(c, tests)
		for _, f := range faults {
			sg.FirstDetecting(f)
		}
	})
	rep.Event = measure(func() {
		pg := atpg.NewPairGrader(c, tests)
		for _, f := range faults {
			pg.FirstDetecting(f)
		}
	})
	s := atpg.NewScheduler(1)
	rep.EventCollapsed = measure(func() {
		if _, err := s.GradeOBD(c, faults, tests); err != nil {
			fatal(err)
		}
	})
	// One instrumented grade for the pair-simulation count (collapsing
	// makes it diverge from faults × pairs).
	counter := atpg.NewScheduler(1)
	counter.CollectStats = true
	if _, err := counter.GradeOBD(c, faults, tests); err != nil {
		fatal(err)
	}
	for _, ws := range counter.Stats() {
		rep.EventCollapsed.PairSims += ws.Pairs
	}
	rep.Event.SpeedupVsSwep = ratio(rep.Sweep.NsPerGrade, rep.Event.NsPerGrade)
	rep.EventCollapsed.SpeedupVsSwep = ratio(rep.Sweep.NsPerGrade, rep.EventCollapsed.NsPerGrade)

	if *seqNetlist != "" {
		sr, err := measureSequential(*seqNetlist, rand.New(rand.NewSource(*seed)), *pairs)
		if err != nil {
			fatal(err)
		}
		rep.Sequential = sr
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s: sweep %d ns/grade, event %d ns/grade (%.1fx), collapsed %d ns/grade (%.1fx)\n",
		*out, rep.Sweep.NsPerGrade, rep.Event.NsPerGrade, rep.Event.SpeedupVsSwep,
		rep.EventCollapsed.NsPerGrade, rep.EventCollapsed.SpeedupVsSwep)
}

// measureSequential records the scan-style snapshot on a DFF-bearing
// netlist: per-style full-universe ATPG (coverage + ns per run) and a
// two-frame unrolled grade through the collapsed event engine.
func measureSequential(netlist string, rng *rand.Rand, pairs int) (*seqReport, error) {
	c, err := logic.ParseFile(netlist)
	if err != nil {
		return nil, err
	}
	s, err := seq.FromCircuit(c)
	if err != nil {
		return nil, err
	}
	faults, _ := fault.OBDUniverse(s.Core)
	sr := &seqReport{
		Circuit:  netlist,
		FFs:      len(s.FFs),
		CoreGate: len(s.Core.Gates),
		Faults:   len(faults),
	}
	for _, st := range []struct {
		style seq.Style
		slot  *styleResult
	}{
		{seq.Enhanced, &sr.Enhanced},
		{seq.LOS, &sr.LOS},
		{seq.LOC, &sr.LOC},
	} {
		res, err := seq.GenerateTests(s, faults, st.style, nil)
		if err != nil {
			return nil, err
		}
		st.slot.Coverage = res.Coverage.String()
		st.slot.Exact = res.Exact
		st.slot.NsPerATPG = measure(func() {
			if _, err := seq.GenerateTests(s, faults, st.style, nil); err != nil {
				fatal(err)
			}
		}).NsPerGrade
	}
	u, err := seq.Unroll(s, 2)
	if err != nil {
		return nil, err
	}
	sr.UnrolledGates = len(u.Gates)
	uFaults, _ := fault.OBDUniverse(u)
	uTests := completeTests(rng, u, pairs)
	sched := atpg.NewScheduler(1)
	sr.UnrolledGrade = measure(func() {
		if _, err := sched.GradeOBD(u, uFaults, uTests); err != nil {
			fatal(err)
		}
	})
	return sr, nil
}

func measure(fn func()) result {
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			fn()
		}
	})
	return result{
		NsPerGrade:  r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

func ratio(base, opt int64) float64 {
	if opt == 0 {
		return 0
	}
	return float64(base) / float64(opt)
}

func completeTests(rng *rand.Rand, c *logic.Circuit, n int) []atpg.TwoPattern {
	mk := func() atpg.Pattern {
		p := make(atpg.Pattern, len(c.Inputs))
		for _, in := range c.Inputs {
			p[in] = logic.FromBool(rng.Intn(2) == 1)
		}
		return p
	}
	out := make([]atpg.TwoPattern, n)
	for i := range out {
		out[i] = atpg.TwoPattern{V1: mk(), V2: mk()}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchbig:", err)
	os.Exit(1)
}
