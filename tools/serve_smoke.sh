#!/bin/sh
# CI smoke test for cmd/obdserve: build it, start it (with a durable
# data directory) on an ephemeral-ish port, wait for /healthz with
# bounded exponential backoff, run one real grade request, one durable
# job submit -> poll -> fetch round-trip, and shut it down with SIGTERM
# (exercising the graceful drain path).
set -eu

ADDR="${OBDSERVE_ADDR:-127.0.0.1:18080}"
GO="${GO:-go}"

$GO build -o bin/obdserve ./cmd/obdserve

DATA="$(mktemp -d)"
./bin/obdserve -addr "$ADDR" -data "$DATA" &
PID=$!
trap 'kill "$PID" 2>/dev/null || true; rm -rf "$DATA"' EXIT

# Wait for the listener: bounded retries with exponential backoff
# (50ms doubling to a 1.6s cap, ~12s total) instead of a fixed sleep —
# fast when the server is fast, patient when CI is slow.
ok=""
delay_ms=50
tries=0
while [ $tries -lt 12 ]; do
    if curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; then
        ok=1
        break
    fi
    sleep "$(awk "BEGIN{printf \"%.3f\", $delay_ms/1000}")"
    delay_ms=$((delay_ms * 2))
    [ $delay_ms -gt 1600 ] && delay_ms=1600
    tries=$((tries + 1))
done
if [ -z "$ok" ]; then
    echo "obdserve never became healthy on $ADDR" >&2
    exit 1
fi

body='{"netlist":"circuit g\ninput a b\noutput y\nnand g1 y a b\n","model":"obd","tests":[{"v1":"01","v2":"11"},{"v1":"11","v2":"01"}]}'
resp="$(curl -sf -X POST "http://$ADDR/v1/grade" -d "$body")"
echo "grade: $resp"
case "$resp" in
*'"faults":4'*'"detected":3'*) ;;
*)
    echo "unexpected grade response" >&2
    exit 1
    ;;
esac

# A second identical request must be served from the cache.
src="$(curl -sf -o /dev/null -D - -X POST "http://$ADDR/v1/grade" -d "$body" | tr -d '\r' | sed -n 's/^Obdserve-Source: //p')"
echo "second request source: $src"
[ "$src" = "cache" ] || { echo "expected a cache hit" >&2; exit 1; }

# Durable job round-trip: submit a small mission campaign, poll the
# snapshot until done (same backoff discipline), fetch the artifact.
job='{"kind":"mission","netlist":"circuit g\ninput a b\noutput y\nnand g1 y a b\n","mission":{"seed":7,"chips":4,"duration":1000,"fault_rate":2,"per_chip":true}}'
snap="$(curl -sf -X POST "http://$ADDR/v1/jobs" -d "$job")"
echo "job submit: $snap"
id="$(printf '%s' "$snap" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')"
[ -n "$id" ] || { echo "job submit returned no id" >&2; exit 1; }

state=""
delay_ms=50
tries=0
while [ $tries -lt 12 ]; do
    snap="$(curl -sf "http://$ADDR/v1/jobs/$id")"
    case "$snap" in
    *'"state":"done"'*)
        state=done
        break
        ;;
    *'"state":"failed"'*)
        echo "job failed: $snap" >&2
        exit 1
        ;;
    esac
    sleep "$(awk "BEGIN{printf \"%.3f\", $delay_ms/1000}")"
    delay_ms=$((delay_ms * 2))
    [ $delay_ms -gt 1600 ] && delay_ms=1600
    tries=$((tries + 1))
done
[ "$state" = "done" ] || { echo "job $id never finished: $snap" >&2; exit 1; }

result="$(curl -sf "http://$ADDR/v1/jobs/$id/result")"
echo "job result: $(printf '%s' "$result" | head -c 120)..."
case "$result" in
*'"fingerprint"'*'"report"'*) ;;
*)
    echo "unexpected job artifact" >&2
    exit 1
    ;;
esac

curl -sf "http://$ADDR/metrics" >/dev/null

# Graceful drain: SIGTERM must make the process exit cleanly on its own.
kill -TERM "$PID"
trap 'rm -rf "$DATA"' EXIT
wait "$PID"
rm -rf "$DATA"
trap - EXIT
echo "obdserve smoke: OK"
