#!/bin/sh
# CI smoke test for cmd/obdserve: build it, start it on an ephemeral-ish
# port, wait for /healthz, run one real grade request, check the answer,
# and shut it down with SIGTERM (exercising the graceful drain path).
set -eu

ADDR="${OBDSERVE_ADDR:-127.0.0.1:18080}"
GO="${GO:-go}"

$GO build -o bin/obdserve ./cmd/obdserve

./bin/obdserve -addr "$ADDR" &
PID=$!
trap 'kill "$PID" 2>/dev/null || true' EXIT

# Wait up to ~10s for the listener.
ok=""
i=0
while [ $i -lt 100 ]; do
    if curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; then
        ok=1
        break
    fi
    i=$((i + 1))
    sleep 0.1
done
if [ -z "$ok" ]; then
    echo "obdserve never became healthy on $ADDR" >&2
    exit 1
fi

body='{"netlist":"circuit g\ninput a b\noutput y\nnand g1 y a b\n","model":"obd","tests":[{"v1":"01","v2":"11"},{"v1":"11","v2":"01"}]}'
resp="$(curl -sf -X POST "http://$ADDR/v1/grade" -d "$body")"
echo "grade: $resp"
case "$resp" in
*'"faults":4'*'"detected":3'*) ;;
*)
    echo "unexpected grade response" >&2
    exit 1
    ;;
esac

# A second identical request must be served from the cache.
src="$(curl -sf -o /dev/null -D - -X POST "http://$ADDR/v1/grade" -d "$body" | tr -d '\r' | sed -n 's/^Obdserve-Source: //p')"
echo "second request source: $src"
[ "$src" = "cache" ] || { echo "expected a cache hit" >&2; exit 1; }

curl -sf "http://$ADDR/metrics" >/dev/null

# Graceful drain: SIGTERM must make the process exit cleanly on its own.
kill -TERM "$PID"
trap - EXIT
wait "$PID"
echo "obdserve smoke: OK"
